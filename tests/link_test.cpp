// FairSharePipe semantics: processor sharing with a virtual-time clock.
// Every expected instant below is derived by hand from the PS invariant
// (n in-flight flows each progress at rate * min(1, channels/n)).
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/link.hpp"
#include "sim/task.hpp"

namespace pfsc::sim {
namespace {

Task flow_at(Engine& eng, LinkModel& link, Seconds start, Bytes bytes,
             std::vector<Seconds>& done) {
  if (start > 0.0) co_await eng.delay(start);
  co_await link.transfer(bytes);
  done.push_back(eng.now());
}

TEST(FairSharePipe, SingleFlowTakesBytesOverRate) {
  Engine eng;
  FairSharePipe pipe(eng, 100.0);  // 100 B/s
  std::vector<Seconds> done;
  eng.spawn(flow_at(eng, pipe, 0.0, 250, done));
  eng.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0], 2.5, 1e-9);
  EXPECT_EQ(pipe.bytes_moved(), 250u);
  EXPECT_EQ(pipe.transfers(), 1u);
}

TEST(FairSharePipe, ConcurrentFlowsShareSimultaneously) {
  Engine eng;
  FairSharePipe pipe(eng, 100.0);
  std::vector<Seconds> done;
  // Two 100 B flows from t=0: each sees 50 B/s, both finish at 2.0 —
  // unlike FIFO, which would finish them at 1.0 and 2.0.
  eng.spawn(flow_at(eng, pipe, 0.0, 100, done));
  eng.spawn(flow_at(eng, pipe, 0.0, 100, done));
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.0, 1e-9);
  EXPECT_NEAR(done[1], 2.0, 1e-9);
}

TEST(FairSharePipe, StaggeredArrivalRecostsInFlightFlow) {
  Engine eng;
  FairSharePipe pipe(eng, 100.0);
  std::vector<Seconds> done;
  // A: 200 B at t=0. Alone until t=0.5 (50 B moved). B: 100 B at t=0.5;
  // both then run at 50 B/s, so B finishes at 0.5 + 2.0 = 2.5. A has 50 B
  // left and the link to itself: done at 3.0.
  eng.spawn(flow_at(eng, pipe, 0.0, 200, done));
  eng.spawn(flow_at(eng, pipe, 0.5, 100, done));
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.5, 1e-9);
  EXPECT_NEAR(done[1], 3.0, 1e-9);
}

TEST(FairSharePipe, ChannelsRaiseTheSharingThreshold) {
  Engine eng;
  FairSharePipe pipe(eng, 100.0, 0.0, 2);
  std::vector<Seconds> done;
  // Two flows fit the two channels: both at full rate, done at 1.0. Four
  // flows: each at 100 * 2/4 = 50 B/s, done at 2.0.
  eng.spawn(flow_at(eng, pipe, 0.0, 100, done));
  eng.spawn(flow_at(eng, pipe, 0.0, 100, done));
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 1.0, 1e-9);
  EXPECT_NEAR(done[1], 1.0, 1e-9);

  done.clear();
  for (int i = 0; i < 4; ++i) eng.spawn(flow_at(eng, pipe, 0.0, 100, done));
  eng.run();
  ASSERT_EQ(done.size(), 4u);
  for (const Seconds t : done) EXPECT_NEAR(t - 1.0, 2.0, 1e-9);
}

TEST(FairSharePipe, PerMessageLatencyAddsBeforeService) {
  Engine eng;
  FairSharePipe pipe(eng, 100.0, /*per_message_latency=*/0.5);
  std::vector<Seconds> done;
  eng.spawn(flow_at(eng, pipe, 0.0, 100, done));
  eng.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0], 1.5, 1e-9);
}

TEST(FairSharePipe, ProbesReportInstantaneousSharing) {
  Engine eng;
  FairSharePipe pipe(eng, 120.0);
  std::vector<Seconds> done;
  for (int i = 0; i < 3; ++i) eng.spawn(flow_at(eng, pipe, 0.0, 120, done));
  EXPECT_EQ(pipe.active_flows(), 0u);
  EXPECT_DOUBLE_EQ(pipe.flow_rate(), 0.0);
  // Each flow sees 40 B/s; all complete at t=3. Park the clock mid-flight.
  EXPECT_FALSE(eng.run_until(1.5));
  EXPECT_EQ(pipe.active_flows(), 3u);
  EXPECT_DOUBLE_EQ(pipe.flow_rate(), 40.0);
  EXPECT_NEAR(pipe.utilisation(), 1.0, 1e-9);  // saturated so far
  eng.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(pipe.active_flows(), 0u);
  // Busy 3 s of 3 s total.
  EXPECT_NEAR(pipe.utilisation(), 1.0, 1e-9);
}

TEST(FairSharePipe, UtilisationCountsIdleTime) {
  Engine eng;
  FairSharePipe pipe(eng, 100.0);
  std::vector<Seconds> done;
  eng.spawn(flow_at(eng, pipe, 0.0, 100, done));
  eng.spawn([](Engine& e) -> Task { co_await e.delay(4.0); }(eng));
  eng.run();
  EXPECT_NEAR(pipe.utilisation(), 0.25, 1e-9);  // busy 1 s of 4 s
}

TEST(MakeLink, FactorySelectsPolicy) {
  Engine eng;
  auto fifo = make_link(eng, LinkPolicy::fifo, 100.0);
  auto fair = make_link(eng, LinkPolicy::fair_share, 100.0);
  EXPECT_EQ(fifo->policy(), LinkPolicy::fifo);
  EXPECT_EQ(fair->policy(), LinkPolicy::fair_share);
  EXPECT_STREQ(link_policy_name(fifo->policy()), "fifo");
  EXPECT_STREQ(link_policy_name(fair->policy()), "fair_share");
}

TEST(FairSharePipe, ManyFlowsConserveWork) {
  // 10,000 staggered flows through one saturated link: processor sharing
  // is work-conserving, so the last completion lands exactly at
  // total_bytes / rate (all arrivals are inside the busy period).
  Engine eng;
  FairSharePipe pipe(eng, 1.0e6);
  std::vector<Seconds> done;
  constexpr int kFlows = 10000;
  Bytes total = 0;
  for (int i = 0; i < kFlows; ++i) {
    const Bytes bytes = 1000 + static_cast<Bytes>(i % 7) * 100;
    total += bytes;
    // Arrivals spread over the first second; the full drain takes >10 s.
    eng.spawn(flow_at(eng, pipe, 1e-4 * static_cast<double>(i), bytes, done));
  }
  eng.run();
  ASSERT_EQ(done.size(), static_cast<std::size_t>(kFlows));
  EXPECT_EQ(pipe.bytes_moved(), total);
  EXPECT_EQ(pipe.transfers(), static_cast<std::uint64_t>(kFlows));
  const Seconds expect_end = static_cast<double>(total) / 1.0e6;
  EXPECT_NEAR(done.back(), expect_end, 1e-6);
}

}  // namespace
}  // namespace pfsc::sim
