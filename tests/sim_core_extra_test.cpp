// Additional simulation-core coverage: Co<T> payload semantics, zero-delay
// ordering, degenerate synchronisation shapes, and engine statistics.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/link.hpp"
#include "sim/resources.hpp"
#include "sim/task.hpp"

namespace pfsc::sim {
namespace {

Co<std::unique_ptr<int>> make_unique_answer(Engine& eng) {
  co_await eng.delay(0.25);
  co_return std::make_unique<int>(99);
}

TEST(CoPayload, MoveOnlyValuePropagates) {
  Engine eng;
  std::unique_ptr<int> out;
  eng.spawn([](Engine& e, std::unique_ptr<int>& out) -> Task {
    out = co_await make_unique_answer(e);
  }(eng, out));
  eng.run();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 99);
}

Co<std::vector<int>> make_vector(Engine& eng, int n) {
  co_await eng.delay(0.1);
  std::vector<int> v;
  for (int i = 0; i < n; ++i) v.push_back(i);
  co_return v;
}

TEST(CoPayload, ContainerValuePropagates) {
  Engine eng;
  std::vector<int> out;
  eng.spawn([](Engine& e, std::vector<int>& out) -> Task {
    out = co_await make_vector(e, 5);
  }(eng, out));
  eng.run();
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(CoPayload, NestedCoChain) {
  Engine eng;
  int depth_reached = 0;
  // A chain of Co frames 100 deep: symmetric transfer must not overflow
  // the stack or lose the value.
  struct Chain {
    static Co<int> descend(Engine& eng, int depth) {
      if (depth == 0) {
        co_await eng.delay(0.001);
        co_return 0;
      }
      const int below = co_await descend(eng, depth - 1);
      co_return below + 1;
    }
  };
  eng.spawn([](Engine& e, int& out) -> Task {
    out = co_await Chain::descend(e, 100);
  }(eng, depth_reached));
  eng.run();
  EXPECT_EQ(depth_reached, 100);
}

TEST(ZeroDelay, DoesNotSuspend) {
  Engine eng;
  bool ran = false;
  eng.spawn([](Engine& e, bool& ran) -> Task {
    co_await e.delay(0.0);
    EXPECT_DOUBLE_EQ(e.now(), 0.0);
    ran = true;
  }(eng, ran));
  eng.run();
  EXPECT_TRUE(ran);
}

TEST(Degenerate, SinglePartyBarrierPassesThrough) {
  Engine eng;
  Barrier bar(eng, 1);
  int rounds = 0;
  eng.spawn([](Barrier& b, int& rounds) -> Task {
    for (int i = 0; i < 3; ++i) {
      co_await b.arrive();
      ++rounds;
    }
  }(bar, rounds));
  eng.run();
  EXPECT_EQ(rounds, 3);
}

TEST(Degenerate, EventDoubleTriggerIsNoop) {
  Engine eng;
  Event evt(eng);
  evt.trigger();
  evt.trigger();
  EXPECT_TRUE(evt.fired());
  evt.reset();
  EXPECT_FALSE(evt.fired());
}

TEST(Degenerate, JoinAllOfNothing) {
  Engine eng;
  bool done = false;
  eng.spawn([](bool& done) -> Task {
    co_await join_all({});
    done = true;
  }(done));
  eng.run();
  EXPECT_TRUE(done);
}

TEST(EngineStats, CountsAndClockAdvance) {
  Engine eng;
  EXPECT_EQ(eng.executed_events(), 0u);
  eng.spawn([](Engine& e) -> Task {
    co_await e.delay(1.0);
    co_await e.delay(2.0);
  }(eng));
  eng.run();
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);
  EXPECT_EQ(eng.executed_events(), 3u);  // spawn resume + 2 delay resumes
}

TEST(EngineStats, RunUntilThenRunContinues) {
  Engine eng;
  std::vector<double> marks;
  eng.spawn([](Engine& e, std::vector<double>& marks) -> Task {
    for (int i = 0; i < 5; ++i) {
      co_await e.delay(1.0);
      marks.push_back(e.now());
    }
  }(eng, marks));
  EXPECT_FALSE(eng.run_until(2.5));
  EXPECT_EQ(marks.size(), 2u);
  EXPECT_DOUBLE_EQ(eng.now(), 2.5);  // clock parked at the horizon
  eng.run();
  EXPECT_EQ(marks.size(), 5u);
  EXPECT_DOUBLE_EQ(eng.now(), 5.0);
}

TEST(PipeLatency, PerMessageLatencyAdds) {
  Engine eng;
  FifoPipe pipe(eng, 100.0, /*per_message_latency=*/0.5);
  Seconds done_at = 0.0;
  eng.spawn([](FifoPipe& p, Engine& e, Seconds& out) -> Task {
    co_await p.transfer(100);
    out = e.now();
  }(pipe, eng, done_at));
  eng.run();
  EXPECT_DOUBLE_EQ(done_at, 1.5);  // 0.5 latency + 1.0 transfer
}

}  // namespace
}  // namespace pfsc::sim
