// Unit tests for the pluggable pending-event queues (sim/event_queue.hpp),
// the token-based cancellation API, and the coroutine-frame arena.

#include <gtest/gtest.h>

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <vector>

#include "sim/arena.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/task.hpp"
#include "support/rng.hpp"

namespace pfsc::sim {
namespace {

// A dummy resumable frame so queue entries carry a real handle. The queue
// never resumes anything in these tests; it only stores and orders.
std::coroutine_handle<> dummy_handle() {
  return std::noop_coroutine();
}

std::vector<ScheduledEvent> drain(EventQueue& q) {
  std::vector<ScheduledEvent> out;
  while (!q.empty()) out.push_back(q.pop());
  return out;
}

bool ordered(const std::vector<ScheduledEvent>& evs) {
  for (std::size_t i = 1; i < evs.size(); ++i) {
    if (evs[i - 1].t > evs[i].t) return false;
    if (evs[i - 1].t == evs[i].t && evs[i - 1].seq > evs[i].seq) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Queue-level ordering
// ---------------------------------------------------------------------------

class EveryQueue : public ::testing::TestWithParam<EventQueuePolicy> {};

INSTANTIATE_TEST_SUITE_P(Policies, EveryQueue,
                         ::testing::Values(EventQueuePolicy::binary_heap,
                                           EventQueuePolicy::ladder),
                         [](const auto& info) {
                           return event_queue_policy_name(info.param);
                         });

TEST_P(EveryQueue, PopsInTimeThenSeqOrder) {
  auto q = make_event_queue(GetParam());
  Rng rng(0xE001);
  std::uint64_t seq = 1;
  for (int i = 0; i < 1000; ++i) {
    q->push({rng.uniform_double(0.0, 50.0), 0.0, seq++, dummy_handle()});
  }
  EXPECT_EQ(q->size(), 1000u);
  auto evs = drain(*q);
  ASSERT_EQ(evs.size(), 1000u);
  EXPECT_TRUE(ordered(evs));
}

TEST_P(EveryQueue, SameTimestampIsFifoBySeq) {
  auto q = make_event_queue(GetParam());
  // All at the same instant: pop order must be schedule order, exactly.
  for (std::uint64_t seq = 1; seq <= 256; ++seq) {
    q->push({3.25, 0.0, seq, dummy_handle()});
  }
  auto evs = drain(*q);
  ASSERT_EQ(evs.size(), 256u);
  for (std::uint64_t i = 0; i < 256; ++i) EXPECT_EQ(evs[i].seq, i + 1);
}

TEST_P(EveryQueue, PeekMatchesPopAndInterleavesWithPush) {
  auto q = make_event_queue(GetParam());
  Rng rng(0xE002);
  std::uint64_t seq = 1;
  double now = 0.0;
  std::vector<ScheduledEvent> popped;
  for (int round = 0; round < 2000; ++round) {
    if (q->empty() || rng.uniform(3) != 0) {
      // Engine invariant: never schedule before the current time.
      q->push({now + rng.uniform_double(0.0, 10.0), now, seq++, dummy_handle()});
    } else {
      const ScheduledEvent* top = q->peek();
      ASSERT_NE(top, nullptr);
      const ScheduledEvent peeked = *top;  // pop() invalidates the pointer
      const ScheduledEvent ev = q->pop();
      EXPECT_EQ(ev.t, peeked.t);
      EXPECT_EQ(ev.seq, peeked.seq);
      now = ev.t;
      popped.push_back(ev);
    }
  }
  auto rest = drain(*q);
  popped.insert(popped.end(), rest.begin(), rest.end());
  EXPECT_TRUE(ordered(popped));
  EXPECT_EQ(q->peek(), nullptr);
}

TEST(LadderQueue, GrowsAndShrinksWithPopulation) {
  LadderQueue q;
  const std::size_t initial = q.bucket_count();
  std::uint64_t seq = 1;
  Rng rng(0xE003);
  for (int i = 0; i < 4096; ++i) {
    q.push({rng.uniform_double(0.0, 100.0), 0.0, seq++, dummy_handle()});
  }
  EXPECT_GT(q.bucket_count(), initial);
  while (q.size() > 8) (void)q.pop();
  EXPECT_LT(q.bucket_count(), 4096u);
  auto evs = drain(q);
  EXPECT_TRUE(ordered(evs));
}

TEST(LadderQueue, SparseFarFutureTailStaysOrdered) {
  // Events separated by far more than a bucket "year" exercise the
  // fruitless-lap direct-search fallback and the cursor jump.
  LadderQueue q;
  std::uint64_t seq = 1;
  q.push({1.0e-6, 0.0, seq++, dummy_handle()});
  q.push({5.0, 0.0, seq++, dummy_handle()});
  q.push({9000.0, 0.0, seq++, dummy_handle()});
  q.push({9.0e7, 0.0, seq++, dummy_handle()});
  auto evs = drain(q);
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_TRUE(ordered(evs));
  EXPECT_EQ(evs.front().t, 1.0e-6);
  EXPECT_EQ(evs.back().t, 9.0e7);
}

TEST(LadderQueue, ReusableAfterFullDrain) {
  LadderQueue q;
  std::uint64_t seq = 1;
  for (int wave = 0; wave < 3; ++wave) {
    const double base = wave * 1000.0;
    for (int i = 0; i < 100; ++i) {
      q.push({base + static_cast<double>(i % 7), 0.0, seq++, dummy_handle()});
    }
    auto evs = drain(q);
    ASSERT_EQ(evs.size(), 100u);
    EXPECT_TRUE(ordered(evs));
    EXPECT_TRUE(q.empty());
  }
}

// ---------------------------------------------------------------------------
// Token-based cancellation through the Engine
// ---------------------------------------------------------------------------

struct CaptureHandle {
  std::coroutine_handle<>* slot;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) { *slot = h; }
  void await_resume() const noexcept {}
};

Task suspend_once_then_count(std::coroutine_handle<>* slot, int* fired) {
  co_await CaptureHandle{slot};
  ++*fired;
}

class EveryEngine : public ::testing::TestWithParam<EventQueuePolicy> {};

INSTANTIATE_TEST_SUITE_P(Policies, EveryEngine,
                         ::testing::Values(EventQueuePolicy::binary_heap,
                                           EventQueuePolicy::ladder),
                         [](const auto& info) {
                           return event_queue_policy_name(info.param);
                         });

TEST_P(EveryEngine, CancelThenRescheduleStillFires) {
  // Regression for the address-keyed cancellation bug: cancelling one
  // wakeup of a frame and then legitimately re-scheduling the same frame
  // must not swallow the new wakeup. The address-keyed implementation
  // matched the tombstone against the *frame*, so the reschedule was
  // skipped and `fired` stayed 0.
  Engine eng(GetParam());
  std::coroutine_handle<> h;
  int fired = 0;
  eng.spawn(suspend_once_then_count(&h, &fired));
  EXPECT_TRUE(eng.run_until(0.5));  // runs the task up to its suspend
  ASSERT_TRUE(h);

  const WakeToken cancelled = eng.schedule_after(h, 1.0);
  eng.cancel_scheduled(cancelled);
  eng.schedule_after(h, 2.0);
  eng.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.now(), 2.0);  // the cancelled 1 s wakeup never advanced time
}

TEST_P(EveryEngine, CancelledWakeupNeitherAdvancesTimeNorCounts) {
  Engine eng(GetParam());
  std::coroutine_handle<> h;
  int fired = 0;
  eng.spawn(suspend_once_then_count(&h, &fired));
  (void)eng.run_until(0.0);
  ASSERT_TRUE(h);
  const std::uint64_t executed_before = eng.executed_events();

  const WakeToken tok = eng.schedule_after(h, 4.0);
  eng.cancel_scheduled(tok);
  EXPECT_TRUE(eng.run_until(10.0));  // only a tombstone: drains
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(eng.executed_events(), executed_before);
  EXPECT_EQ(eng.pending_events(), 0u);  // tombstone erased, not retained
  EXPECT_EQ(eng.now(), 0.0);            // never fast-forwarded to 10

  // The frame is still live: a real wakeup works afterwards.
  eng.schedule_after(h, 1.0);
  eng.run();
  EXPECT_EQ(fired, 1);
}

TEST_P(EveryEngine, RunUntilDrainsLeadingTombstonesBeforeDeciding) {
  // A cancelled wakeup behind a live one: run_until must pop the live
  // event, then treat the remaining tombstone as empty.
  Engine eng(GetParam());
  std::coroutine_handle<> h;
  int fired = 0;
  eng.spawn(suspend_once_then_count(&h, &fired));
  (void)eng.run_until(0.0);
  ASSERT_TRUE(h);

  const WakeToken late = eng.schedule_after(h, 5.0);
  eng.cancel_scheduled(late);
  eng.schedule_after(h, 1.0);
  EXPECT_TRUE(eng.run_until(2.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.now(), 1.0);
}

TEST(EngineCancel, NullTokenIsIgnored) {
  Engine eng;
  eng.cancel_scheduled(WakeToken{});  // must be a no-op
  std::coroutine_handle<> h;
  int fired = 0;
  eng.spawn(suspend_once_then_count(&h, &fired));
  (void)eng.run_until(0.0);
  eng.schedule_after(h, 1.0);
  eng.run();
  EXPECT_EQ(fired, 1);
}

TEST(EnginePolicy, ReportsItsQueuePolicy) {
  Engine heap(EventQueuePolicy::binary_heap);
  EXPECT_EQ(heap.event_queue_policy(), EventQueuePolicy::binary_heap);
  Engine ladder;
  EXPECT_EQ(ladder.event_queue_policy(), EventQueuePolicy::ladder);
}

// ---------------------------------------------------------------------------
// Frame arena
// ---------------------------------------------------------------------------

Task tick_task(Engine& eng, int* done) {
  co_await eng.delay(1.0e-3);
  ++*done;
}

Co<int> child_value(Engine& eng) {
  co_await eng.delay(1.0e-4);
  co_return 7;
}

Task parent_task(Engine& eng, int* sum) {
  *sum += co_await child_value(eng);
}

TEST(FrameArenaTest, RecyclesFramesAcrossWaves) {
  Engine eng;
  int done = 0;
  for (int wave = 0; wave < 8; ++wave) {
    for (int i = 0; i < 32; ++i) eng.spawn(tick_task(eng, &done));
    eng.run();
  }
  EXPECT_EQ(done, 8 * 32);
  const FrameArena& arena = eng.frame_arena();
  // First wave pays fresh allocations; later waves ride the free lists.
  EXPECT_GT(arena.fresh_allocations(), 0u);
  EXPECT_GT(arena.reused_allocations(), arena.fresh_allocations());
  EXPECT_EQ(arena.outstanding(), 0u);
}

TEST(FrameArenaTest, ChildFramesPoolToo) {
  Engine eng;
  int sum = 0;
  for (int wave = 0; wave < 4; ++wave) {
    for (int i = 0; i < 16; ++i) eng.spawn(parent_task(eng, &sum));
    eng.run();
  }
  EXPECT_EQ(sum, 4 * 16 * 7);
  EXPECT_GT(eng.frame_arena().reused_allocations(), 0u);
  EXPECT_EQ(eng.frame_arena().outstanding(), 0u);
}

Task suspend_forever(std::coroutine_handle<>* slot) {
  co_await CaptureHandle{slot};
}

TEST(FrameArenaTest, TeardownReclaimsUnfinishedRoots) {
  // An engine destroyed with parked coroutines must free their frames back
  // through the arena (ASan in CI watches this test closely).
  std::coroutine_handle<> h;
  {
    Engine eng;
    eng.spawn(suspend_forever(&h));
    (void)eng.run_until(0.0);
    ASSERT_TRUE(h);
    EXPECT_EQ(eng.frame_arena().outstanding(), 1u);
  }  // ~Engine destroys the parked root; ~FrameArena asserts outstanding==0
}

TEST(FrameArenaTest, FramesWithoutAnEngineUseTheGlobalAllocator) {
  // No engine alive: the thread has no current arena, so frame new/delete
  // must fall back to ::operator new/delete and still pair up correctly.
  ASSERT_EQ(FrameArena::current(), nullptr);
  std::coroutine_handle<> h;
  int fired = 0;
  {
    Task t = suspend_once_then_count(&h, &fired);
    EXPECT_TRUE(t.valid());
  }  // destroyed unspawned: frame freed via the fallback path
  EXPECT_EQ(fired, 0);
}

TEST(FrameArenaTest, EnginesNestAndRestoreTheCurrentArena) {
  Engine outer;
  const FrameArena* outer_arena = &outer.frame_arena();
  EXPECT_EQ(FrameArena::current(), outer_arena);
  {
    Engine inner;
    EXPECT_EQ(FrameArena::current(), &inner.frame_arena());
  }
  EXPECT_EQ(FrameArena::current(), outer_arena);
}

}  // namespace
}  // namespace pfsc::sim
