// End-to-end property: the paper's equations predict what the simulated
// file system actually does, across the stripe-request sweep — the core
// validity claim of the reproduction, asserted as a test rather than a
// bench table.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace pfsc {
namespace {

class PredictionSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PredictionSweep, MeasuredCensusTracksEquations) {
  const std::uint32_t r = GetParam();
  const unsigned jobs = 4;
  RunningStats inuse;
  RunningStats load;
  Rng seeder(0xCAFE + r);
  for (int rep = 0; rep < 3; ++rep) {
    harness::Scenario spec;
    spec.workload = harness::Workload::multi;
    spec.jobs = static_cast<int>(jobs);
    spec.nprocs = 16;  // small jobs: the census depends only on layout
    spec.ior.segment_count = 2;
    spec.ior.hints.driver = mpiio::Driver::ad_lustre;
    spec.ior.hints.striping_factor = r;
    spec.ior.hints.striping_unit = 128_MiB;
    const auto res = harness::run_scenario(spec, seeder.next_u64());
    for (const auto& job : res.per_job) {
      ASSERT_EQ(job.err, lustre::Errno::ok);
      ASSERT_TRUE(job.verified);
    }
    inuse.add(res.contention.d_inuse);
    load.add(res.contention.d_load);
  }
  const double pred_inuse = core::d_inuse_uniform(r, jobs, 480);
  const double pred_load = core::d_load(r, jobs, 480);
  // Variance of D_inuse over random placement is modest; 3 repetitions
  // should land within ~6% of the expectation.
  EXPECT_NEAR(inuse.mean(), pred_inuse, pred_inuse * 0.06) << "R=" << r;
  EXPECT_NEAR(load.mean(), pred_load, pred_load * 0.06) << "R=" << r;
}

INSTANTIATE_TEST_SUITE_P(StripeSweep, PredictionSweep,
                         ::testing::Values(16u, 64u, 128u, 160u));

TEST(PredictionPlfs, BackendLoadTracksEq6) {
  for (int procs : {128, 512}) {
    harness::Scenario spec;
    spec.workload = harness::Workload::plfs;
    spec.nprocs = procs;
    spec.ior.segment_count = 2;
    spec.ior.hints.driver = mpiio::Driver::ad_plfs;
    const auto res =
        harness::run_scenario(spec, 0xFACE + static_cast<unsigned>(procs));
    ASSERT_EQ(res.ior.err, lustre::Errno::ok);
    const double pred = core::plfs_d_load(static_cast<unsigned>(procs), 480);
    EXPECT_NEAR(res.contention.d_load, pred, pred * 0.08) << procs << " procs";
  }
}

TEST(PredictionSlowdown, OrderStatisticsBeatMeanLoadAtFullScale) {
  // Measure the actual 4-job slowdown at the paper's configuration
  // (1,024-proc jobs, R=160) and check which predictor is closer: the
  // slowest-OST model or the mean load. This only holds at full scale —
  // small jobs are aggregator-bound, not worst-OST-bound — which is itself
  // part of the claim (see EXPERIMENTS.md E4).
  harness::Scenario solo;
  solo.nprocs = 1024;  // full Table II workload: the effect is volume-driven
  solo.ior.hints.driver = mpiio::Driver::ad_lustre;
  solo.ior.hints.striping_factor = 160;
  solo.ior.hints.striping_unit = 128_MiB;
  const double solo_bw = harness::run_scenario(solo, 0xBEEF).ior.write_mbps;

  harness::Scenario multi;
  multi.workload = harness::Workload::multi;
  multi.jobs = 4;
  multi.nprocs = 1024;
  multi.ior.hints = solo.ior.hints;
  const auto res = harness::run_scenario(multi, 0xBEEF);
  const double measured_slowdown = solo_bw / res.metric;

  const double mean_load = core::d_load(160, 4, 480);                    // 1.66
  const double order_stat = core::predicted_job_slowdown(480, 4, 160);   // ~4.0
  // The mean-load prediction is a strict *underestimate* of what
  // synchronous jobs experience (the paper measured x3.44); the
  // slowest-OST prediction is an upper bound (the busiest target carries
  // only part of each job's data). The measurement must land between them.
  EXPECT_GT(measured_slowdown, mean_load * 1.05);
  EXPECT_LT(measured_slowdown, order_stat * 1.10);
}

}  // namespace
}  // namespace pfsc
