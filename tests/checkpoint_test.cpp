// Tests for the checkpoint/restart application model and the optimal
// interval formulae.
#include <gtest/gtest.h>

#include "apps/checkpoint.hpp"
#include "hw/platform.hpp"

namespace pfsc::apps {
namespace {

TEST(Interval, YoungFormula) {
  // C = 50 s, M = 10000 s -> sqrt(2*50*10000) = 1000 s.
  EXPECT_NEAR(young_interval(50.0, 10000.0), 1000.0, 1e-9);
  EXPECT_THROW(young_interval(0.0, 100.0), UsageError);
}

TEST(Interval, DalyCloseToYoungForSmallC) {
  const double young = young_interval(10.0, 100000.0);
  const double daly = daly_interval(10.0, 100000.0);
  EXPECT_NEAR(daly, young, young * 0.02);
  // For large C, Daly clamps to MTBF.
  EXPECT_DOUBLE_EQ(daly_interval(500.0, 100.0), 100.0);
}

TEST(Interval, PredictedEfficiencyShape) {
  const Seconds C = 60.0;
  const Seconds M = 3600.0 * 24;
  const Seconds R = 120.0;
  // Efficiency is maximised near the Young interval.
  const double at_opt = predicted_efficiency(young_interval(C, M), C, M, R);
  const double too_short = predicted_efficiency(young_interval(C, M) / 16, C, M, R);
  const double too_long = predicted_efficiency(young_interval(C, M) * 16, C, M, R);
  EXPECT_GT(at_opt, too_short);
  EXPECT_GT(at_opt, too_long);
  EXPECT_GT(at_opt, 0.9);
  // No failures: overhead is just the checkpoint cost.
  EXPECT_NEAR(predicted_efficiency(600.0, 60.0, 0.0, 0.0), 600.0 / 660.0, 1e-9);
}

struct CkptFixture : ::testing::Test {
  CheckpointSpec small_spec() {
    CheckpointSpec spec;
    spec.nprocs = 8;
    spec.procs_per_node = 4;
    spec.bytes_per_rank = 4_MiB;
    spec.work_total = 100.0;
    spec.interval = 25.0;
    spec.relaunch_delay = 5.0;
    spec.hints.driver = mpiio::Driver::ad_lustre;
    spec.hints.striping_factor = 4;
    spec.hints.striping_unit = 1_MiB;
    return spec;
  }
};

TEST_F(CkptFixture, FailureFreeRunCompletesAllWork) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 1);
  const auto out = run_checkpoint_app(fs, small_spec(), 1);
  EXPECT_DOUBLE_EQ(out.work_done, 100.0);
  EXPECT_EQ(out.failures, 0u);
  EXPECT_EQ(out.checkpoints_written, 4u);  // 100 / 25
  EXPECT_EQ(out.checkpoints_wasted, 0u);
  EXPECT_GT(out.mean_checkpoint_seconds, 0.0);
  // Makespan = work + checkpoint I/O.
  EXPECT_GT(out.makespan, 100.0);
  EXPECT_GT(out.efficiency, 0.5);
  EXPECT_LT(out.efficiency, 1.0);
  // The durable checkpoints exist on the file system.
  EXPECT_NE(fs.find("/ckpt/ckpt.3"), nullptr);
}

TEST_F(CkptFixture, FailuresForceReworkAndRestarts) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 2);
  CheckpointSpec spec = small_spec();
  spec.mtbf = 40.0;  // aggressive: expect several failures in ~100+s
  const auto out = run_checkpoint_app(fs, spec, 7);
  EXPECT_DOUBLE_EQ(out.work_done, 100.0);  // still completes
  EXPECT_GT(out.failures, 0u);
  EXPECT_GT(out.work_lost, 0.0);
  EXPECT_GT(out.makespan, 100.0 + out.work_lost);
  EXPECT_LT(out.efficiency, 0.9);
}

TEST_F(CkptFixture, EfficiencyDropsWithShorterMtbf) {
  auto eff = [&](Seconds mtbf, std::uint64_t seed) {
    sim::Engine eng;
    lustre::FileSystem fs(eng, hw::tiny_test_platform(), 3);
    CheckpointSpec spec = small_spec();
    spec.work_total = 200.0;
    spec.mtbf = mtbf;
    return run_checkpoint_app(fs, spec, seed).efficiency;
  };
  // Average over a few seeds to smooth the exponential draws.
  double healthy = 0.0;
  double flaky = 0.0;
  for (std::uint64_t s = 0; s < 4; ++s) {
    healthy += eff(100000.0, s);
    flaky += eff(60.0, s);
  }
  EXPECT_GT(healthy, flaky);
}

TEST_F(CkptFixture, SlowerIoLowersEfficiency) {
  auto eff = [&](std::uint32_t stripes) {
    sim::Engine eng;
    lustre::FileSystem fs(eng, hw::tiny_test_platform(), 4);
    CheckpointSpec spec = small_spec();
    spec.bytes_per_rank = 16_MiB;
    spec.hints.striping_factor = stripes;
    return run_checkpoint_app(fs, spec, 11).efficiency;
  };
  // The paper's argument in one assertion: wider striping -> faster
  // checkpoints -> better application efficiency.
  EXPECT_GT(eff(8), eff(1));
}

TEST_F(CkptFixture, WorksWithPlfs) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 5);
  plfs::Plfs plfs(fs);
  CheckpointSpec spec = small_spec();
  spec.hints.driver = mpiio::Driver::ad_plfs;
  const auto out = run_checkpoint_app(fs, spec, 13, &plfs);
  EXPECT_DOUBLE_EQ(out.work_done, 100.0);
  EXPECT_EQ(out.checkpoints_written, 4u);
  EXPECT_TRUE(plfs.is_container("/ckpt/ckpt.0"));
}

TEST_F(CkptFixture, RejectsBadSpec) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 6);
  CheckpointSpec spec = small_spec();
  spec.work_total = 0.0;
  EXPECT_THROW(run_checkpoint_app(fs, spec, 1), UsageError);
}

}  // namespace
}  // namespace pfsc::apps
