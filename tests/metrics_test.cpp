#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/metrics.hpp"

namespace pfsc::core {
namespace {

// ---------------------------------------------------------------------------
// Paper ground truth: Tables III, IV and VI, and the Section VI PLFS loads.
// ---------------------------------------------------------------------------

TEST(Metrics, TableIII_R160_D480) {
  // Jobs, D_inuse, D_load from the paper's Table III.
  const struct { unsigned n; double inuse; double load; } rows[] = {
      {1, 160.00, 1.00}, {2, 266.67, 1.20}, {3, 337.78, 1.42},
      {4, 385.19, 1.66}, {5, 416.79, 1.92}, {6, 437.86, 2.19},
      {7, 451.91, 2.48}, {8, 461.27, 2.78}, {9, 467.51, 3.08},
      {10, 471.68, 3.39},
  };
  for (const auto& row : rows) {
    EXPECT_NEAR(d_inuse_uniform(160, row.n, 480), row.inuse, 0.005);
    EXPECT_NEAR(d_load(160, row.n, 480), row.load, 0.006);
    EXPECT_DOUBLE_EQ(d_req(160, row.n), 160.0 * row.n);
  }
}

TEST(Metrics, TableIV_R64_D480) {
  const struct { unsigned n; double inuse; double load; } rows[] = {
      {1, 64.00, 1.00},  {2, 119.47, 1.07}, {3, 167.54, 1.15},
      {4, 209.20, 1.22}, {5, 245.31, 1.30}, {6, 276.60, 1.39},
      {7, 303.72, 1.48}, {8, 327.22, 1.57}, {9, 347.59, 1.66},
      {10, 365.25, 1.75},
  };
  for (const auto& row : rows) {
    EXPECT_NEAR(d_inuse_uniform(64, row.n, 480), row.inuse, 0.005);
    EXPECT_NEAR(d_load(64, row.n, 480), row.load, 0.006);
  }
}

TEST(Metrics, TableVI_Stampede_R128_D160) {
  const struct { unsigned n; double inuse; double load; } rows[] = {
      {1, 128.00, 1.00}, {2, 153.60, 1.67}, {3, 158.72, 2.42},
      {4, 159.74, 3.21}, {5, 159.95, 4.00}, {6, 159.99, 4.80},
      {7, 160.00, 5.60}, {8, 160.00, 6.40}, {9, 160.00, 7.20},
      {10, 160.00, 8.00},
  };
  for (const auto& row : rows) {
    EXPECT_NEAR(d_inuse_uniform(128, row.n, 160), row.inuse, 0.005);
    EXPECT_NEAR(d_load(128, row.n, 160), row.load, 0.005);
  }
}

TEST(Metrics, PlfsLoadsQuotedInSectionVI) {
  // "at 512 cores ... an average of 2.4 tasks using each OST; by 688 cores,
  //  there are 3 tasks per OST ... At 2,048 and 4,096 cores, the number of
  //  collisions reaches 8.53 and 17.06."
  EXPECT_NEAR(plfs_d_load(512, 480), 2.4, 0.05);
  EXPECT_NEAR(plfs_d_load(688, 480), 3.0, 0.05);
  EXPECT_NEAR(plfs_d_load(2048, 480), 8.53, 0.01);
  EXPECT_NEAR(plfs_d_load(4096, 480), 17.06, 0.01);
}

TEST(Metrics, PlfsCrossoverCoreCount) {
  const unsigned cores = plfs_cores_at_load(480, 3.0);
  EXPECT_GE(cores, 670u);
  EXPECT_LE(cores, 695u);
  EXPECT_GE(plfs_d_load(cores, 480), 3.0);
  EXPECT_LT(plfs_d_load(cores - 1, 480), 3.0);
}

TEST(Metrics, Plfs256ProcsLoadMatchesSectionVIExample) {
  // "An execution running with 256 processes will create 256 data files,
  //  requiring 512 stripes. Experimentally, this produces an average OST
  //  load of 1.58."
  // (1.58 is the paper's *measured* average; the Eq. 6 prediction is 1.62.)
  EXPECT_NEAR(plfs_d_load(256, 480), 1.58, 0.06);
}

// ---------------------------------------------------------------------------
// Structural properties of the equations.
// ---------------------------------------------------------------------------

class MetricsProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(MetricsProperty, RecurrenceMatchesClosedForm) {
  const auto [r, d_total] = GetParam();
  for (unsigned n = 1; n <= 20; ++n) {
    std::vector<double> reqs(n, r);
    EXPECT_NEAR(d_inuse(reqs, d_total), d_inuse_uniform(r, n, d_total),
                1e-9 * d_total);
  }
}

TEST_P(MetricsProperty, InuseMonotoneAndBounded) {
  const auto [r, d_total] = GetParam();
  double prev = 0.0;
  for (unsigned n = 1; n <= 50; ++n) {
    const double inuse = d_inuse_uniform(r, n, d_total);
    EXPECT_GE(inuse, prev);                                 // monotone
    EXPECT_LE(inuse, d_total + 1e-9);                       // bounded by total
    EXPECT_LE(inuse, d_req(r, n) + 1e-9);                   // bounded by demand
    EXPECT_GE(inuse, r - 1e-9);                             // at least one job's worth
    prev = inuse;
  }
}

TEST_P(MetricsProperty, LoadAtLeastDemandOverTotal) {
  const auto [r, d_total] = GetParam();
  for (unsigned n = 1; n <= 50; ++n) {
    const double load = d_load(r, n, d_total);
    EXPECT_GE(load, 1.0 - 1e-9);
    EXPECT_GE(load, d_req(r, n) / d_total - 1e-9);
    // load never exceeds n (can't collide more jobs than exist)
    EXPECT_LE(load, static_cast<double>(n) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MetricsProperty,
    ::testing::Values(std::make_tuple(1.0, 480.0), std::make_tuple(32.0, 480.0),
                      std::make_tuple(160.0, 480.0),
                      std::make_tuple(128.0, 160.0),
                      std::make_tuple(2.0, 480.0),
                      std::make_tuple(480.0, 480.0)));

TEST(Metrics, HeterogeneousRecurrence) {
  // Mixed request sizes: first job grabs 160, second 64.
  const std::vector<double> reqs{160.0, 64.0};
  // After job 1: 160 in use. Job 2 adds 64 * (1 - 160/480) = 42.667.
  EXPECT_NEAR(d_inuse(reqs, 480.0), 202.667, 0.001);
  // Order invariance of Eq. 1 under uniform randomness.
  const std::vector<double> swapped{64.0, 160.0};
  EXPECT_NEAR(d_inuse(reqs, 480.0), d_inuse(swapped, 480.0), 1e-9);
}

TEST(Metrics, EdgeCases) {
  EXPECT_DOUBLE_EQ(d_inuse_uniform(0, 10, 480), 0.0);
  EXPECT_DOUBLE_EQ(d_inuse_uniform(480, 1, 480), 480.0);
  EXPECT_DOUBLE_EQ(d_load(160, 0, 480), 0.0);
  EXPECT_THROW(d_inuse_uniform(481, 1, 480), UsageError);
  EXPECT_THROW(d_inuse_uniform(-1, 1, 480), UsageError);
}

// ---------------------------------------------------------------------------
// Occupancy distribution.
// ---------------------------------------------------------------------------

TEST(Occupancy, SumsToTotalsAndMatchesEq2) {
  const unsigned d = 480;
  const unsigned n = 4;
  const unsigned r = 160;
  const auto e = occupancy_expectation(d, n, r);
  ASSERT_EQ(e.size(), n + 1);
  // Expected OST counts sum to the number of OSTs...
  EXPECT_NEAR(std::accumulate(e.begin(), e.end(), 0.0), d, 1e-6);
  // ...k-weighted sum equals total demand...
  double weighted = 0.0;
  for (unsigned k = 0; k <= n; ++k) weighted += k * e[k];
  EXPECT_NEAR(weighted, d_req(r, n), 1e-6);
  // ...and OSTs-with-at-least-one matches Eq. 2.
  EXPECT_NEAR(d - e[0], d_inuse_uniform(r, n, d), 1e-6);
}

TEST(Occupancy, TableV_UsageColumns) {
  // Table V, R=160 row: expected #OSTs contended by exactly 1..4 of the 4
  // jobs: 191.8, 147.0, 41.8 (paper lists measured means; the binomial
  // expectation should be close).
  const auto e = occupancy_expectation(480, 4, 160);
  EXPECT_NEAR(e[1], 189.6, 2.5);
  EXPECT_NEAR(e[2], 142.2, 5.0);
  EXPECT_NEAR(e[3], 47.4, 6.0);
  EXPECT_NEAR(e[4], 5.9, 1.5);
}

TEST(Occupancy, Plfs512RanksMatchesTableVIII) {
  // Table VIII row "0 collisions" (= exactly 1 file) averages ~124.6 across
  // the five experiments; binomial expectation is ~121.5.
  const auto e = occupancy_expectation(480, 512, 2);
  EXPECT_NEAR(e[1], 121.5, 1.0);
  EXPECT_NEAR(e[2], 129.7, 1.5);  // "1 collision" row
  // Total OSTs in use ~429.
  EXPECT_NEAR(480 - e[0], 423.3, 1.0);
}

TEST(Occupancy, MonteCarloAgreesWithExpectation) {
  Rng rng(1234);
  const unsigned d = 48;
  const unsigned n = 6;
  const unsigned r = 16;
  const auto expect = occupancy_expectation(d, n, r);
  const auto mc = occupancy_monte_carlo(d, n, r, rng, 4000);
  ASSERT_EQ(mc.size(), expect.size());
  for (unsigned k = 0; k <= n; ++k) {
    EXPECT_NEAR(mc[k], expect[k], std::max(0.35, expect[k] * 0.06))
        << "k=" << k;
  }
}

TEST(Occupancy, DegenerateCases) {
  // r = d: every job uses every OST.
  const auto all = occupancy_expectation(10, 3, 10);
  EXPECT_NEAR(all[3], 10.0, 1e-9);
  EXPECT_NEAR(all[0] + all[1] + all[2], 0.0, 1e-9);
  // r = 0: nothing used.
  const auto none = occupancy_expectation(10, 3, 0);
  EXPECT_NEAR(none[0], 10.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Advisors and observation helpers.
// ---------------------------------------------------------------------------

TEST(Advisor, RecommendsLargestStripeWithinBudget) {
  const auto advice = advise_stripe_count(480.0, 4, 1.25, 160);
  EXPECT_GT(advice.recommended_stripes, 0u);
  EXPECT_LE(advice.predicted_load, 1.25);
  // One more stripe would blow the budget (or hit the cap).
  if (advice.recommended_stripes < 160) {
    EXPECT_GT(d_load(advice.recommended_stripes + 1, 4, 480.0), 1.25);
  }
}

TEST(Advisor, PaperScenario32StripesIsLowLoad) {
  // Section V: four jobs at 32 stripes => load ~1.11.
  EXPECT_NEAR(d_load(32, 4, 480), 1.11, 0.005);
  const auto advice = advise_stripe_count(480.0, 4, 1.11, 160);
  EXPECT_GE(advice.recommended_stripes, 32u);
}

TEST(Advisor, UnreachableBudgetReturnsZero) {
  // With 10 jobs each needing >= 1 stripe on 4 OSTs the load is >= 2.5.
  const auto advice = advise_stripe_count(4.0, 10, 1.0, 4);
  EXPECT_EQ(advice.recommended_stripes, 0u);
}

TEST(Observe, ComputesLoadAndHistogram) {
  const std::vector<std::uint32_t> counts{0, 1, 2, 2, 0, 3};
  const auto obs = observe(counts);
  EXPECT_DOUBLE_EQ(obs.d_inuse, 4.0);
  EXPECT_DOUBLE_EQ(obs.d_req, 8.0);
  EXPECT_DOUBLE_EQ(obs.d_load, 2.0);
  ASSERT_EQ(obs.histogram.size(), 4u);
  EXPECT_EQ(obs.histogram[0], 2u);
  EXPECT_EQ(obs.histogram[1], 1u);
  EXPECT_EQ(obs.histogram[2], 2u);
  EXPECT_EQ(obs.histogram[3], 1u);
}

TEST(Observe, EmptyCounts) {
  const auto obs = observe(std::vector<std::uint32_t>{});
  EXPECT_DOUBLE_EQ(obs.d_load, 0.0);
  EXPECT_DOUBLE_EQ(obs.d_inuse, 0.0);
}

}  // namespace
}  // namespace pfsc::core
