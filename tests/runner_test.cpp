// ParallelRunner / RunPlan behaviour: the thread count must be invisible in
// the results (bit-identical CSV), seeds must be derived in plan order, and
// plan misuse must throw before any simulation starts.
#include <gtest/gtest.h>

#include "harness/run_plan.hpp"
#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "sim/domain.hpp"

namespace pfsc {
namespace {

harness::Scenario tiny_ior_scenario() {
  harness::Scenario s;
  s.platform = hw::tiny_test_platform();
  s.nprocs = 4;
  s.procs_per_node = 4;
  s.ior.block_size = 1_MiB;
  s.ior.transfer_size = 256_KiB;
  s.ior.segment_count = 2;
  s.ior.hints.striping_factor = 4;
  s.ior.hints.striping_unit = 1_MiB;
  return s;
}

TEST(Runner, ThreadCountDoesNotChangeResults) {
  const harness::Scenario base = tiny_ior_scenario();
  harness::RunPlan plan;
  plan.sweep_striping_factor({1, 2, 4})
      .sweep_striping_unit({static_cast<double>(256_KiB),
                            static_cast<double>(1_MiB)})
      .repetitions(2)
      .base_seed(0xD0);

  const auto serial = harness::ParallelRunner(1).run(base, plan);
  const auto parallel = harness::ParallelRunner(8).run(base, plan);
  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
  // Beyond the headline metric: the full observations must agree too.
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t p = 0; p < serial.size(); ++p) {
    const auto& a = serial.point(p);
    const auto& b = parallel.point(p);
    ASSERT_EQ(a.reps.size(), b.reps.size());
    for (std::size_t r = 0; r < a.reps.size(); ++r) {
      EXPECT_EQ(a.reps[r].seed, b.reps[r].seed);
      EXPECT_DOUBLE_EQ(a.reps[r].ior.write_mbps, b.reps[r].ior.write_mbps);
      EXPECT_DOUBLE_EQ(a.reps[r].ior.write_time, b.reps[r].ior.write_time);
    }
  }
}

TEST(Runner, GridExpansionLastAxisFastest) {
  harness::RunPlan plan;
  plan.sweep_striping_factor({1, 2}).sweep_nprocs({4, 8});
  const auto points = plan.expand(tiny_ior_scenario());
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].coords, (std::vector<double>{1, 4}));
  EXPECT_EQ(points[1].coords, (std::vector<double>{1, 8}));
  EXPECT_EQ(points[2].coords, (std::vector<double>{2, 4}));
  EXPECT_EQ(points[3].coords, (std::vector<double>{2, 8}));
  EXPECT_EQ(points[3].scenario.ior.hints.striping_factor, 2u);
  EXPECT_EQ(points[3].scenario.nprocs, 8);
}

TEST(Runner, SeedsDependOnPlanNotExecution) {
  harness::RunPlan plan;
  plan.sweep_striping_factor({1, 2}).repetitions(3).base_seed(42);
  const auto a = plan.expand(tiny_ior_scenario());
  const auto b = plan.expand(tiny_ior_scenario());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t p = 0; p < a.size(); ++p) EXPECT_EQ(a[p].seeds, b[p].seeds);
  // Independent seeds per (point, rep) in the default mode.
  EXPECT_NE(a[0].seeds, a[1].seeds);
}

TEST(Runner, PerRepSeedModeSharesSeedsAcrossPoints) {
  harness::RunPlan plan;
  plan.sweep_striping_factor({1, 2, 4})
      .repetitions(3)
      .base_seed(7)
      .seed_mode(harness::RunPlan::SeedMode::per_rep);
  const auto points = plan.expand(tiny_ior_scenario());
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].seeds, points[1].seeds);
  EXPECT_EQ(points[1].seeds, points[2].seeds);
  EXPECT_EQ(points[0].seeds.size(), 3u);
}

TEST(Runner, CsvHasHeaderAndOneRowPerRep) {
  const harness::Scenario base = tiny_ior_scenario();
  harness::RunPlan plan;
  plan.sweep_striping_factor({1, 2}).repetitions(2).base_seed(5);
  const auto set = harness::ParallelRunner(1).run(base, plan);
  const std::string csv = set.to_csv();
  EXPECT_EQ(csv.rfind("striping_factor,rep,seed,value\n", 0), 0u);
  std::size_t rows = 0;
  for (char c : csv) rows += c == '\n';
  EXPECT_EQ(rows, 1u + 2u * 2u);  // header + points x reps
}

TEST(Runner, InvalidScenarioThrowsBeforeRunning) {
  harness::Scenario bad = tiny_ior_scenario();
  bad.workload = harness::Workload::plfs;  // driver is still ad_lustre
  harness::RunPlan plan;
  EXPECT_THROW(harness::ParallelRunner(2).run(bad, plan), UsageError);
}

TEST(Runner, WorkerExceptionPropagates) {
  // An axis can configure a scenario that only fails at run time (validate
  // passes, the IOR config guard fires inside the engine). The runner must
  // surface that error, not deadlock or drop it.
  harness::Scenario base = tiny_ior_scenario();
  harness::RunPlan plan;
  plan.sweep("transfer_size", {300000.0}, [](harness::Scenario& s, double v) {
    s.ior.transfer_size = static_cast<Bytes>(v);  // does not divide block
  });
  EXPECT_THROW(harness::ParallelRunner(2).run(base, plan), UsageError);
}

TEST(Runner, ZeroThreadsMeansHardwareConcurrency) {
  EXPECT_GE(harness::ParallelRunner(0).threads(), 1u);
  EXPECT_EQ(harness::ParallelRunner(0).threads(), sim::hardware_threads());
  EXPECT_EQ(harness::ParallelRunner(3).threads(), 3u);
}

TEST(Runner, ProvenanceRecordsEffectiveThreads) {
  const harness::Scenario base = tiny_ior_scenario();
  harness::RunPlan plan;
  plan.sweep_striping_factor({1, 2}).repetitions(2).base_seed(5);
  const auto set = harness::ParallelRunner(2).run(base, plan);
  EXPECT_EQ(set.provenance().rep_threads, 2u);
  EXPECT_EQ(set.provenance().domain_threads, 1u);  // scenario is unsharded
  EXPECT_EQ(set.provenance().hardware_threads, sim::hardware_threads());
  // Provenance lives in a comment header, opt-in, above the normal header.
  const std::string csv = set.to_csv(/*with_provenance=*/true);
  EXPECT_EQ(csv.rfind("# rep_threads=2 domain_threads=1 hardware_threads=", 0),
            0u);
  EXPECT_NE(csv.find("\nstriping_factor,rep,seed,value\n"), std::string::npos);
  // Default serialisation is untouched by provenance.
  EXPECT_EQ(set.to_csv(), set.to_csv(false));
  EXPECT_EQ(set.to_csv().rfind("striping_factor,rep,seed,value\n", 0), 0u);
}

TEST(Runner, DomainThreadsClampRepPool) {
  // A sharded base scenario divides the rep-thread budget: each run spawns
  // domain workers, so the rep pool shrinks to hardware / domains.
  harness::Scenario base = tiny_ior_scenario();
  base.platform.sim_domains = 3;  // tiny platform: 2 OSS shards + client
  harness::RunPlan plan;
  plan.repetitions(2).base_seed(9);
  const auto set = harness::ParallelRunner(8).run(base, plan);
  const auto& prov = set.provenance();
  EXPECT_EQ(prov.domain_threads, 3u);
  const unsigned budget = std::max(1u, sim::hardware_threads() / 3u);
  EXPECT_EQ(prov.rep_threads, std::min({8u, budget, 2u}));
  // The clamp is about resources only; results still match a serial run.
  const auto serial = harness::ParallelRunner(1).run(base, plan);
  EXPECT_EQ(serial.to_csv(), set.to_csv());
}

}  // namespace
}  // namespace pfsc
