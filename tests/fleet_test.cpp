// Synthetic-fleet generator + analytics tests.
//
// Covers the fleet generator (determinism, mix parsing, rank budget), the
// LASSi-style analytics pass (hand-checked risk/ideal numbers, ranking
// invariants) and the headline acceptance property: a 1000-job synthetic
// fleet produces a byte-identical ranked report at any ParallelRunner
// thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "harness/run_plan.hpp"
#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "replay/analytics.hpp"
#include "replay/fleet.hpp"
#include "replay/log.hpp"
#include "support/error.hpp"

namespace pfsc::replay {
namespace {

using harness::JobKind;
using harness::JobSpec;
using harness::Observation;
using harness::Scenario;

TEST(FleetGenerator, SameSeedSameLog) {
  FleetConfig cfg;
  cfg.jobs = 64;
  cfg.seed = 42;
  const std::string a = emit_joblog(generate_fleet(cfg));
  const std::string b = emit_joblog(generate_fleet(cfg));
  EXPECT_EQ(a, b);
}

TEST(FleetGenerator, DifferentSeedDifferentLog) {
  FleetConfig cfg;
  cfg.jobs = 64;
  cfg.seed = 42;
  const std::string a = emit_joblog(generate_fleet(cfg));
  cfg.seed = 43;
  const std::string b = emit_joblog(generate_fleet(cfg));
  EXPECT_NE(a, b);
}

TEST(FleetGenerator, JobIdsUniqueAndArrivalsSorted) {
  FleetConfig cfg;
  cfg.jobs = 200;
  cfg.seed = 7;
  const JobLog log = generate_fleet(cfg);
  ASSERT_EQ(log.jobs.size(), 200u);
  std::set<lustre::sched::JobId> ids;
  Seconds prev = 0.0;
  for (const JobSpec& j : log.jobs) {
    EXPECT_TRUE(ids.insert(j.job_id).second) << "duplicate id " << j.job_id;
    EXPECT_GE(j.arrival, prev);  // Poisson clock only moves forward
    prev = j.arrival;
  }
}

TEST(FleetGenerator, RespectsMix) {
  FleetConfig cfg;
  cfg.jobs = 50;
  cfg.mix = "mdstorm";
  const JobLog log = generate_fleet(cfg);
  for (const JobSpec& j : log.jobs) EXPECT_EQ(j.app, "mdstorm");
}

TEST(FleetGenerator, ThousandJobsFitThePlatform) {
  FleetConfig cfg;
  cfg.jobs = 1000;
  cfg.seed = 9;
  const JobLog log = generate_fleet(cfg);
  long ranks = 0;
  for (const JobSpec& j : log.jobs) ranks += j.nprocs;
  const Scenario s = to_scenario(log);
  const long cap =
      static_cast<long>(s.platform.nodes) * s.platform.cores_per_node;
  EXPECT_LE(ranks, cap);
  EXPECT_NO_THROW(s.validate());
}

TEST(FleetMix, UnknownTemplateListsChoices) {
  try {
    parse_fleet_mix("--fleet_mix", "ior:2,bogus:1");
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown template 'bogus'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("expected one of: ior, checkpoint, plfs, mdstorm"),
              std::string::npos)
        << msg;
  }
}

TEST(FleetMix, RejectsBadWeights) {
  EXPECT_THROW(parse_fleet_mix("--fleet_mix", "ior:0"), UsageError);
  EXPECT_THROW(parse_fleet_mix("--fleet_mix", "ior:x"), UsageError);
  EXPECT_THROW(parse_fleet_mix("--fleet_mix", "ior:,plfs"), UsageError);
  EXPECT_THROW(parse_fleet_mix("--fleet_mix", ",ior"), UsageError);
  EXPECT_THROW(parse_fleet_mix("--fleet_mix", ""), UsageError);
}

TEST(FleetMix, ParsesNamesAndWeights) {
  const std::vector<MixEntry> mix =
      parse_fleet_mix("--fleet_mix", "ior:4,checkpoint:2,plfs");
  ASSERT_EQ(mix.size(), 3u);
  EXPECT_EQ(mix[0].name, "ior");
  EXPECT_EQ(mix[0].weight, 4u);
  EXPECT_EQ(mix[1].name, "checkpoint");
  EXPECT_EQ(mix[1].weight, 2u);
  EXPECT_EQ(mix[2].name, "plfs");
  EXPECT_EQ(mix[2].weight, 1u);  // default weight
}

// risk_ost and ideal_mbps follow directly from the platform capacity model;
// pin them on a job small enough to check by hand. One 4-rank job striped
// over 2 OSTs on the default platform: client demand = min(4 x 420, 24000)
// = 1680 MB/s, layout capacity = 2 x 300 = 600 MB/s.
TEST(FleetAnalytics, HandCheckedRiskAndIdeal) {
  JobSpec j;
  j.kind = JobKind::ior;
  j.job_id = 1;
  j.nprocs = 4;
  j.ior.hints.striping_factor = 2;
  j.ior.test_file = "/risk.dat";
  Scenario s = Scenario::from_jobs({j});
  const Observation obs = harness::run_scenario(s, 1);
  const FleetReport report = analyze_fleet(obs, s.platform);
  ASSERT_EQ(report.jobs.size(), 1u);
  const JobStats& row = report.jobs.front();
  EXPECT_DOUBLE_EQ(row.ideal_mbps, 600.0);
  EXPECT_DOUBLE_EQ(row.risk_ost, 1680.0 / 600.0);
  EXPECT_GT(row.achieved_mbps, 0.0);
  EXPECT_DOUBLE_EQ(row.slowdown, 600.0 / row.achieved_mbps);
  ASSERT_EQ(report.apps.size(), 1u);
  EXPECT_EQ(report.apps.front().jobs, 1u);
  EXPECT_NEAR(report.jain_fairness, 1.0, 1e-12);
}

TEST(FleetAnalytics, AppsRankedByRiskThenSlowdown) {
  FleetConfig cfg;
  cfg.jobs = 40;
  cfg.seed = 3;
  Scenario s = to_scenario(generate_fleet(cfg));
  const Observation obs = harness::run_scenario(s, 3);
  const FleetReport report = analyze_fleet(obs, s.platform);
  ASSERT_GE(report.apps.size(), 2u);
  for (std::size_t i = 1; i < report.apps.size(); ++i) {
    const AppStats& hi = report.apps[i - 1];
    const AppStats& lo = report.apps[i];
    EXPECT_TRUE(hi.mean_risk_ost > lo.mean_risk_ost ||
                (hi.mean_risk_ost == lo.mean_risk_ost &&
                 hi.mean_slowdown >= lo.mean_slowdown))
        << "rank inversion at row " << i;
  }
  // Every generated job shows up in exactly one app row.
  unsigned counted = 0;
  for (const AppStats& a : report.apps) counted += a.jobs;
  EXPECT_EQ(counted, 40u);
}

TEST(FleetAnalytics, ReportSerialisationIsStable) {
  FleetConfig cfg;
  cfg.jobs = 12;
  cfg.seed = 5;
  Scenario s = to_scenario(generate_fleet(cfg));
  const Observation obs = harness::run_scenario(s, 5);
  const FleetReport report = analyze_fleet(obs, s.platform);
  EXPECT_EQ(report.to_json(), analyze_fleet(obs, s.platform).to_json());
  const std::string table = report.format_table();
  EXPECT_NE(table.find("risk(mean/max)"), std::string::npos);
  EXPECT_NE(table.find("slowdown(mean/max)"), std::string::npos);
}

// Acceptance: the 1000-job synthetic fleet is deterministic end to end —
// the same seed yields a byte-identical ranked report no matter how many
// ParallelRunner threads executed the run.
TEST(FleetDeterminism, ThousandJobReportIdenticalAcrossThreadCounts) {
  FleetConfig cfg;
  cfg.jobs = 1000;
  cfg.seed = 17;
  const JobLog log = generate_fleet(cfg);
  const Scenario s = to_scenario(log);

  harness::RunPlan plan;
  plan.repetitions(1).base_seed(0x51EE7);

  const harness::RunSet one = harness::ParallelRunner(1).run(s, plan);
  const harness::RunSet four = harness::ParallelRunner(4).run(s, plan);
  ASSERT_EQ(one.size(), 1u);
  ASSERT_EQ(four.size(), 1u);
  ASSERT_EQ(one.point(0).reps.size(), 1u);

  const std::string report_one =
      analyze_fleet(one.point(0).reps.front(), s.platform).to_json();
  const std::string report_four =
      analyze_fleet(four.point(0).reps.front(), s.platform).to_json();
  EXPECT_EQ(report_one, report_four);
  EXPECT_EQ(one.to_csv(), four.to_csv());

  const FleetReport report =
      analyze_fleet(one.point(0).reps.front(), s.platform);
  EXPECT_EQ(report.jobs.size(), 1000u);
  EXPECT_GT(report.total_mbps, 0.0);
}

}  // namespace
}  // namespace pfsc::replay
