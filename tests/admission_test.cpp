// Admission controller: the default stays bit-for-bit invisible, the
// threshold/detune policies honour the Eq. 1-6 load prediction, and the
// decisions are deterministic at any --sim_domains / --threads count.
//
// The golden tests replay the bundled Fig. 3 quartet and a 200-job
// synthetic fleet under `always` and require byte-identical analytics
// reports to an ungated run (plus the quartet's pinned absolute numbers).
// Fuzz tests drive the controller directly with seeded random
// arrival/service sequences and check the queue invariants: no job lost,
// arrival order preserved, and no release while the predicted load
// exceeds the limit (unless the system was idle).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "harness/admission.hpp"
#include "harness/scenario.hpp"
#include "replay/analytics.hpp"
#include "replay/fleet.hpp"
#include "replay/log.hpp"
#include "sim/engine.hpp"
#include "support/rng.hpp"

#ifndef PFSC_DATA_DIR
#define PFSC_DATA_DIR "data"
#endif

namespace pfsc::harness {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Scenario quartet_scenario() {
  const replay::JobLog log =
      replay::load_joblog(std::string(PFSC_DATA_DIR) + "/fig3_quartet.joblog");
  return replay::to_scenario(log);
}

Scenario fleet_scenario(unsigned jobs, Seconds span) {
  replay::FleetConfig cfg;
  cfg.jobs = jobs;
  cfg.seed = 11;
  cfg.span = span;
  return replay::to_scenario(replay::generate_fleet(cfg));
}

// -- goldens: `always` is bit-for-bit the ungated run -----------------------

TEST(AdmissionGolden, AlwaysQuartetKeepsPinnedNumbers) {
  Scenario s = quartet_scenario();
  ASSERT_EQ(s.admission.policy, AdmissionPolicy::always);  // the default
  const Observation obs = run_scenario(s, 0xF3D0);
  ASSERT_EQ(obs.per_job.size(), 4u);
  EXPECT_TRUE(obs.admissions.empty());
  // The same pinned goldens as ReplayGolden.Fig3QuartetMatchesHandBuiltExactly:
  // the admission hooks must not perturb a single event.
  const double golden[4] = {
      826.69842165621571,
      827.73487650397442,
      828.70417787485655,
      825.15311617913835,
  };
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(obs.per_job[j].write_mbps, golden[j]) << "job " << j;
  }
}

TEST(AdmissionGolden, AlwaysFleet200ReportBytesUnchanged) {
  Scenario plain = fleet_scenario(200, 60.0);
  Scenario gated = plain;
  gated.admission.policy = AdmissionPolicy::always;  // explicit == default
  const Observation a = run_scenario(plain, 7);
  const Observation b = run_scenario(gated, 7);
  const replay::FleetReport ra = replay::analyze_fleet(a, plain.platform);
  const replay::FleetReport rb = replay::analyze_fleet(b, gated.platform);
  EXPECT_EQ(ra.to_json(), rb.to_json());
  EXPECT_EQ(ra.format_table(), rb.format_table());
  EXPECT_FALSE(ra.has_admission);
  EXPECT_FALSE(rb.has_admission);
}

TEST(AdmissionGolden, ThresholdInfinityEqualsAlwaysPerJob) {
  Scenario plain = fleet_scenario(120, 5.0);
  Scenario gated = plain;
  gated.admission.policy = AdmissionPolicy::threshold;
  gated.admission.max_dload = kInf;
  const Observation a = run_scenario(plain, 7);
  const Observation b = run_scenario(gated, 7);
  ASSERT_EQ(a.per_job.size(), b.per_job.size());
  for (std::size_t j = 0; j < a.per_job.size(); ++j) {
    EXPECT_EQ(a.per_job[j].write_mbps, b.per_job[j].write_mbps) << "job " << j;
    EXPECT_EQ(a.per_job[j].write_time, b.per_job[j].write_time) << "job " << j;
  }
  // An infinite limit never queues or detunes: one record per job, all
  // admitted with zero wait.
  ASSERT_EQ(b.admissions.size(), b.per_job.size());
  for (const AdmissionRecord& rec : b.admissions) {
    EXPECT_EQ(rec.action, AdmissionAction::admitted);
    EXPECT_EQ(rec.wait(), 0.0);
  }
}

// -- policies act on the model ----------------------------------------------

TEST(AdmissionPolicyTest, ThresholdDelaysOverlappingJobs) {
  Scenario s = fleet_scenario(120, 5.0);
  s.admission.policy = AdmissionPolicy::threshold;
  s.admission.max_dload = 1.2;
  const Observation obs = run_scenario(s, 7);
  ASSERT_EQ(obs.admissions.size(), obs.per_job.size());
  unsigned delayed = 0;
  for (const AdmissionRecord& rec : obs.admissions) {
    if (rec.action == AdmissionAction::delayed) {
      ++delayed;
      EXPECT_GT(rec.wait(), 0.0);
    }
    // The release invariant: either the prediction fit, or the system was
    // idle (a job is never held back by an empty machine).
    EXPECT_TRUE(rec.predicted_dload <= s.admission.max_dload + 1e-9 ||
                rec.running_before == 0)
        << "job " << rec.job_id << " released at D_load "
        << rec.predicted_dload << " with " << rec.running_before
        << " running";
  }
  EXPECT_GT(delayed, 0u);

  // The analytics surface the decisions.
  const replay::FleetReport report = replay::analyze_fleet(obs, s.platform);
  EXPECT_TRUE(report.has_admission);
  EXPECT_EQ(report.delayed, delayed);
  EXPECT_GT(report.total_admit_wait, 0.0);
  EXPECT_NE(report.format_table().find("admission:"), std::string::npos);
  EXPECT_NE(report.to_json().find("\"admission\""), std::string::npos);
}

TEST(AdmissionPolicyTest, DetuneReducesStripesInsteadOfWaiting) {
  Scenario s = fleet_scenario(120, 5.0);
  s.admission.policy = AdmissionPolicy::detune;
  s.admission.max_dload = 1.2;
  s.admission.min_stripes = 2;
  const Observation obs = run_scenario(s, 7);
  ASSERT_EQ(obs.admissions.size(), obs.per_job.size());
  unsigned detuned = 0;
  for (const AdmissionRecord& rec : obs.admissions) {
    EXPECT_NE(rec.action, AdmissionAction::delayed);  // detune never waits
    EXPECT_EQ(rec.wait(), 0.0);
    if (rec.action == AdmissionAction::detuned) {
      ++detuned;
      EXPECT_LT(rec.stripes_after, rec.stripes_before);
      EXPECT_GE(rec.stripes_after,
                std::min(s.admission.min_stripes, rec.stripes_before));
    }
  }
  EXPECT_GT(detuned, 0u);
}

TEST(AdmissionPolicyTest, DecisionsIdenticalAcrossSimDomains) {
  Scenario s = fleet_scenario(60, 5.0);
  s.admission.policy = AdmissionPolicy::threshold;
  s.admission.max_dload = 1.2;
  Scenario sharded = s;
  sharded.platform.sim_domains = 4;
  const Observation a = run_scenario(s, 7);
  const Observation b = run_scenario(sharded, 7);
  const std::string ja = replay::analyze_fleet(a, s.platform).to_json();
  const std::string jb = replay::analyze_fleet(b, sharded.platform).to_json();
  EXPECT_EQ(ja, jb);
  ASSERT_EQ(a.admissions.size(), b.admissions.size());
  for (std::size_t i = 0; i < a.admissions.size(); ++i) {
    EXPECT_EQ(a.admissions[i].job_id, b.admissions[i].job_id);
    EXPECT_EQ(a.admissions[i].action, b.admissions[i].action);
    EXPECT_EQ(a.admissions[i].released, b.admissions[i].released);
    EXPECT_EQ(a.admissions[i].predicted_dload, b.admissions[i].predicted_dload);
  }
}

// -- controller-level fuzz ---------------------------------------------------

struct FuzzJob {
  JobSpec spec;
  Seconds service = 0.0;
};

std::vector<FuzzJob> gen_fuzz(std::uint64_t seed, std::uint32_t ost_count) {
  Rng rng(0xAD317u ^ (seed * 0x9E3779B97F4A7C15ull));
  std::vector<FuzzJob> jobs;
  const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform(30));
  Seconds arrival = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    FuzzJob f;
    f.spec.job_id = static_cast<lustre::sched::JobId>(i + 1);
    arrival += rng.uniform_double(0.0, 0.5);
    f.spec.arrival = arrival;
    const std::uint64_t roll = rng.uniform(10);
    if (roll < 6) {
      f.spec.kind = JobKind::ior;
      f.spec.nprocs = 1 + static_cast<int>(rng.uniform(32));
      f.spec.ior.hints.driver = mpiio::Driver::ad_lustre;
      f.spec.ior.hints.striping_factor =
          1 + static_cast<std::uint32_t>(rng.uniform(ost_count));
      f.spec.ior.file_per_process = rng.uniform(4) == 0;
    } else if (roll < 8) {
      f.spec.kind = JobKind::plfs;
      f.spec.nprocs = 1 + static_cast<int>(rng.uniform(16));
      f.spec.ior.hints.driver = mpiio::Driver::ad_plfs;
    } else if (roll == 8) {
      f.spec.kind = JobKind::probe_writer;
      f.spec.nprocs = 1 + static_cast<int>(rng.uniform(4));
    } else {
      f.spec.kind = JobKind::noise;
      f.spec.stripes = 1 + static_cast<std::uint32_t>(rng.uniform(4));
    }
    f.service = 0.01 + rng.uniform_double(0.0, 2.0);
    jobs.push_back(std::move(f));
  }
  return jobs;
}

sim::Task fuzz_driver(sim::Engine& eng, AdmissionController& ac,
                      const FuzzJob& f) {
  if (f.spec.arrival > 0.0) co_await eng.delay(f.spec.arrival);
  (void)co_await ac.admit(f.spec);
  co_await eng.delay(f.service);
  ac.finished(f.spec);
}

void run_fuzz(AdmissionPolicy policy, double limit, std::uint64_t seed) {
  hw::PlatformParams platform = hw::tiny_test_platform();
  const std::vector<FuzzJob> jobs = gen_fuzz(seed, platform.ost_count);

  sim::Engine eng;
  AdmissionConfig cfg;
  cfg.policy = policy;
  cfg.max_dload = limit;
  AdmissionController ac(eng, cfg, platform);
  for (const FuzzJob& f : jobs) eng.spawn(fuzz_driver(eng, ac, f));
  eng.run();

  // No job lost, none stuck in the queue, every running job retired.
  EXPECT_EQ(ac.queued_jobs(), 0u) << "seed " << seed;
  EXPECT_EQ(ac.running_jobs(), 0u) << "seed " << seed;
  const std::vector<AdmissionRecord>& recs = ac.records();
  ASSERT_EQ(recs.size(), jobs.size()) << "seed " << seed;
  std::map<lustre::sched::JobId, const AdmissionRecord*> by_id;
  for (const AdmissionRecord& rec : recs) {
    EXPECT_TRUE(by_id.emplace(rec.job_id, &rec).second)
        << "duplicate record for job " << rec.job_id << " seed " << seed;
  }
  for (const FuzzJob& f : jobs) {
    ASSERT_TRUE(by_id.count(f.spec.job_id))
        << "job " << f.spec.job_id << " lost, seed " << seed;
    const AdmissionRecord& rec = *by_id[f.spec.job_id];
    EXPECT_EQ(rec.arrival, f.spec.arrival) << "seed " << seed;
    EXPECT_GE(rec.released, rec.arrival) << "seed " << seed;
    // Arrival order is preserved: a job never overtakes an earlier one.
    for (const FuzzJob& g : jobs) {
      const AdmissionRecord& other = *by_id[g.spec.job_id];
      if (g.spec.arrival < f.spec.arrival) {
        EXPECT_LE(other.released, rec.released)
            << "job " << g.spec.job_id << " overtaken by " << f.spec.job_id
            << ", seed " << seed;
      }
    }
    // Never released into a predicted overload (unless the machine was
    // idle, which must always admit to avoid deadlock).
    if (policy == AdmissionPolicy::threshold) {
      EXPECT_TRUE(rec.predicted_dload <= limit + 1e-9 ||
                  rec.running_before == 0)
          << "job " << rec.job_id << " at D_load " << rec.predicted_dload
          << " with " << rec.running_before << " running, seed " << seed;
      EXPECT_EQ(rec.stripes_after, rec.stripes_before) << "seed " << seed;
    }
    if (policy == AdmissionPolicy::detune) {
      EXPECT_EQ(rec.wait(), 0.0) << "seed " << seed;
      EXPECT_LE(rec.stripes_after, rec.stripes_before) << "seed " << seed;
    }
  }
}

TEST(AdmissionFuzz, ThresholdQueueInvariantsHoldAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    run_fuzz(AdmissionPolicy::threshold, 1.1, seed);
  }
}

TEST(AdmissionFuzz, ThresholdInfinityNeverWaits) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    hw::PlatformParams platform = hw::tiny_test_platform();
    const std::vector<FuzzJob> jobs = gen_fuzz(seed, platform.ost_count);
    sim::Engine eng;
    AdmissionConfig cfg;
    cfg.policy = AdmissionPolicy::threshold;
    cfg.max_dload = kInf;
    AdmissionController ac(eng, cfg, platform);
    for (const FuzzJob& f : jobs) eng.spawn(fuzz_driver(eng, ac, f));
    eng.run();
    for (const AdmissionRecord& rec : ac.records()) {
      EXPECT_EQ(rec.action, AdmissionAction::admitted);
      EXPECT_EQ(rec.wait(), 0.0);
    }
  }
}

TEST(AdmissionFuzz, DetuneInvariantsHoldAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    run_fuzz(AdmissionPolicy::detune, 1.1, seed);
  }
}

// -- config validation -------------------------------------------------------

TEST(AdmissionConfigTest, ScenarioValidateRejectsBadLimits) {
  Scenario s = fleet_scenario(5, 0.0);
  s.admission.max_dload = 0.0;
  EXPECT_THROW(s.validate(), UsageError);
  s.admission.max_dload = 1.5;
  s.admission.min_stripes = 0;
  EXPECT_THROW(s.validate(), UsageError);
  s.admission.min_stripes = 1;
  EXPECT_NO_THROW(s.validate());
}

TEST(AdmissionConfigTest, JobRequestsMatchTheJobShapes) {
  const hw::PlatformParams p = hw::tiny_test_platform();
  JobSpec ior_job;
  ior_job.kind = JobKind::ior;
  ior_job.ior.hints.driver = mpiio::Driver::ad_lustre;
  ior_job.ior.hints.striping_factor = 4;
  EXPECT_EQ(AdmissionController::job_requests(ior_job, p),
            std::vector<double>({4.0}));
  EXPECT_EQ(AdmissionController::job_requests(ior_job, p, 2),
            std::vector<double>({2.0}));

  ior_job.nprocs = 3;
  ior_job.ior.file_per_process = true;
  EXPECT_EQ(AdmissionController::job_requests(ior_job, p),
            std::vector<double>({4.0, 4.0, 4.0}));

  JobSpec plfs_job;
  plfs_job.kind = JobKind::plfs;
  plfs_job.nprocs = 2;
  EXPECT_EQ(AdmissionController::job_requests(plfs_job, p),
            std::vector<double>({2.0, 2.0}));

  JobSpec probe;
  probe.kind = JobKind::probe_writer;
  probe.nprocs = 2;
  EXPECT_EQ(AdmissionController::job_requests(probe, p),
            std::vector<double>({1.0, 1.0}));

  JobSpec noise;
  noise.kind = JobKind::noise;
  noise.stripes = 3;
  EXPECT_EQ(AdmissionController::job_requests(noise, p),
            std::vector<double>({3.0}));
}

}  // namespace
}  // namespace pfsc::harness
