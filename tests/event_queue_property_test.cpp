// Property tests for the pluggable event queues: on seeded random
// schedule/cancel workloads, the ladder queue must dispatch exactly the
// (time, seq) sequence the reference binary heap dispatches — first at the
// queue level (raw push/pop op streams), then end to end through the
// Engine with coroutines, delays and token cancellations in the mix. A
// failing case is shrunk to its smallest failing op prefix before being
// reported, so the failure message names a minimal (seed, prefix)
// reproducer, like sched_property_test does for the schedulers.
#include <gtest/gtest.h>

#include <coroutine>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/task.hpp"
#include "support/rng.hpp"

namespace pfsc::sim {
namespace {

// ---------------------------------------------------------------------------
// Queue level: raw op streams
// ---------------------------------------------------------------------------

struct Op {
  bool push = false;
  double dt = 0.0;  // for pushes: offset above the last popped time
};

std::vector<Op> gen_ops(std::uint64_t seed) {
  Rng rng(0xE0E0u ^ (seed * 0x9E3779B97F4A7C15ull));
  const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform(600));
  std::vector<Op> ops;
  ops.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Op op;
    op.push = rng.uniform(3) != 0;  // 2:1 push:pop keeps the queue loaded
    if (op.push) {
      switch (rng.uniform(4)) {
        case 0: op.dt = 0.0; break;  // same-timestamp burst: FIFO tiebreak
        case 1: op.dt = rng.uniform_double(0.0, 1.0e-5); break;   // RPC-ish
        case 2: op.dt = rng.uniform_double(0.0, 10.0); break;     // coarse
        default: op.dt = rng.uniform_double(0.0, 1.0e5); break;   // far tail
      }
    }
    ops.push_back(op);
  }
  return ops;
}

/// Replay the first `n` ops against `policy`; pops (plus a final drain)
/// form the trace. Pushed times respect the engine invariant t >= "now"
/// (the last popped time).
std::vector<std::pair<double, std::uint64_t>> replay(EventQueuePolicy policy,
                                                     const std::vector<Op>& ops,
                                                     std::size_t n) {
  auto q = make_event_queue(policy);
  std::vector<std::pair<double, std::uint64_t>> trace;
  std::uint64_t seq = 1;
  double now = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (ops[i].push) {
      q->push({now + ops[i].dt, now, seq++, std::noop_coroutine()});
    } else if (!q->empty()) {
      const ScheduledEvent ev = q->pop();
      now = ev.t;
      trace.emplace_back(ev.t, ev.seq);
    }
  }
  while (!q->empty()) {
    const ScheduledEvent ev = q->pop();
    trace.emplace_back(ev.t, ev.seq);
  }
  return trace;
}

std::string compare_traces(const std::vector<Op>& ops, std::size_t n) {
  const auto heap = replay(EventQueuePolicy::binary_heap, ops, n);
  const auto ladder = replay(EventQueuePolicy::ladder, ops, n);
  if (heap.size() != ladder.size()) {
    return "trace lengths differ: heap " + std::to_string(heap.size()) +
           " vs ladder " + std::to_string(ladder.size());
  }
  for (std::size_t i = 0; i < heap.size(); ++i) {
    if (heap[i] != ladder[i]) {
      return "dispatch " + std::to_string(i) + " differs: heap (t=" +
             std::to_string(heap[i].first) + ", seq=" +
             std::to_string(heap[i].second) + ") vs ladder (t=" +
             std::to_string(ladder[i].first) + ", seq=" +
             std::to_string(ladder[i].second) + ")";
    }
  }
  return {};
}

TEST(EventQueueProperty, LadderMatchesHeapOnRandomOpStreams) {
  for (std::uint64_t seed = 1; seed <= 80; ++seed) {
    const std::vector<Op> ops = gen_ops(seed);
    const std::string err = compare_traces(ops, ops.size());
    if (err.empty()) continue;
    // Shrink to the smallest failing prefix; the replay is deterministic,
    // so (seed, prefix length) is an exact reproducer.
    std::size_t n = ops.size();
    std::string shrunk = err;
    for (std::size_t len = 1; len < ops.size(); ++len) {
      const std::string e = compare_traces(ops, len);
      if (!e.empty()) {
        n = len;
        shrunk = e;
        break;
      }
    }
    ADD_FAILURE() << "seed " << seed << " fails with the first " << n
                  << " of " << ops.size() << " ops: " << shrunk;
    return;
  }
}

// ---------------------------------------------------------------------------
// Engine level: coroutines, delays and token cancellations
// ---------------------------------------------------------------------------

struct Fired {
  double at = 0.0;
  int worker = 0;
  int step = 0;
  bool operator==(const Fired&) const = default;
};

/// delay(dt) that also schedules `decoys` extra wakeups for this frame and
/// immediately cancels them — the cancellations must be invisible.
struct NoisyDelay {
  Engine& eng;
  double dt;
  int decoys;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    for (int i = 0; i < decoys; ++i) {
      const WakeToken tok = eng.schedule_after(h, dt * (i + 2));
      eng.cancel_scheduled(tok);
    }
    eng.schedule_after(h, dt);
  }
  void await_resume() const noexcept {}
};

Task worker(Engine& eng, std::vector<double> delays, std::vector<int> decoys,
            int id, std::vector<Fired>* log) {
  for (std::size_t step = 0; step < delays.size(); ++step) {
    co_await NoisyDelay{eng, delays[step], decoys[step]};
    log->push_back({eng.now(), id, static_cast<int>(step)});
  }
}

std::vector<Fired> run_engine_workload(EventQueuePolicy policy,
                                       std::uint64_t seed) {
  Rng rng(0xE1E1u ^ (seed * 0x9E3779B97F4A7C15ull));
  const int workers = 2 + static_cast<int>(rng.uniform(6));
  std::vector<Fired> log;
  Engine eng(policy);
  for (int w = 0; w < workers; ++w) {
    const std::size_t steps = 1 + rng.uniform(40);
    std::vector<double> delays;
    std::vector<int> decoys;
    for (std::size_t s = 0; s < steps; ++s) {
      // Mix zero-delay steps (same-timestamp FIFO) with spread-out ones.
      delays.push_back(rng.uniform(4) == 0
                           ? 0.0
                           : rng.uniform_double(1.0e-6, 0.5));
      decoys.push_back(static_cast<int>(rng.uniform(3)));
    }
    eng.spawn(worker(eng, std::move(delays), std::move(decoys), w, &log));
  }
  eng.run();
  return log;
}

TEST(EventQueueProperty, EnginesDispatchIdenticallyUnderCancellation) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto heap = run_engine_workload(EventQueuePolicy::binary_heap, seed);
    const auto ladder = run_engine_workload(EventQueuePolicy::ladder, seed);
    ASSERT_EQ(heap.size(), ladder.size()) << "seed " << seed;
    for (std::size_t i = 0; i < heap.size(); ++i) {
      ASSERT_EQ(heap[i].at, ladder[i].at)
          << "seed " << seed << " firing " << i << " worker "
          << heap[i].worker << " step " << heap[i].step;
      ASSERT_EQ(heap[i].worker, ladder[i].worker)
          << "seed " << seed << " firing " << i;
      ASSERT_EQ(heap[i].step, ladder[i].step)
          << "seed " << seed << " firing " << i;
    }
  }
}

}  // namespace
}  // namespace pfsc::sim
