// FlagTable / strict-parsing behaviour: bad values must throw UsageError
// (never the silent std::atoi zero the old CLI had), aliases must resolve,
// and the scenario flag table must actually drive Scenario/RunPlan fields.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "harness/cli.hpp"
#include "replay/replay_cli.hpp"

namespace pfsc::harness::cli {
namespace {

std::vector<char*> argv_of(std::vector<std::string>& args) {
  std::vector<char*> out;
  out.reserve(args.size());
  for (auto& a : args) out.push_back(a.data());
  return out;
}

TEST(CliParse, StrictIntegers) {
  EXPECT_EQ(parse_int("--x", "42"), 42);
  EXPECT_EQ(parse_int("--x", "-7"), -7);
  EXPECT_THROW(parse_int("--x", ""), UsageError);
  EXPECT_THROW(parse_int("--x", "abc"), UsageError);
  EXPECT_THROW(parse_int("--x", "12abc"), UsageError);  // trailing garbage
  EXPECT_THROW(parse_int("--x", "1.5"), UsageError);
  EXPECT_THROW(parse_uint("--x", "-1"), UsageError);
}

TEST(CliParse, StrictDoubles) {
  EXPECT_DOUBLE_EQ(parse_double("--x", "0.25"), 0.25);
  EXPECT_THROW(parse_double("--x", "0.25s"), UsageError);
  EXPECT_THROW(parse_double("--x", ""), UsageError);
}

TEST(CliParse, ByteSuffixes) {
  EXPECT_EQ(parse_bytes("--x", "512"), 512u);
  EXPECT_EQ(parse_bytes("--x", "4K"), 4_KiB);
  EXPECT_EQ(parse_bytes("--x", "64M"), 64_MiB);
  EXPECT_EQ(parse_bytes("--x", "64MB"), 64_MiB);
  EXPECT_EQ(parse_bytes("--x", "64MiB"), 64_MiB);
  EXPECT_EQ(parse_bytes("--x", "2G"), 2_GiB);
  EXPECT_EQ(parse_bytes("--x", "1T"), 1024_GiB);
  EXPECT_EQ(parse_bytes("--x", "128B"), 128u);
  EXPECT_THROW(parse_bytes("--x", "64Q"), UsageError);
  EXPECT_THROW(parse_bytes("--x", "64Mx"), UsageError);
  EXPECT_THROW(parse_bytes("--x", "M"), UsageError);
  EXPECT_THROW(parse_bytes("--x", ""), UsageError);
}

TEST(CliTable, BindsAndAliases) {
  int count = 0;
  Bytes size = 0;
  FlagTable table;
  table.bind("--count", count, "how many");
  table.alias("--n");
  table.bind_bytes("--size", size, "how big");

  std::vector<std::string> args = {"prog", "--n", "3", "--size", "2M"};
  auto argv = argv_of(args);
  table.parse(static_cast<int>(argv.size()), argv.data(), 1);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(size, 2_MiB);
}

TEST(CliTable, RejectsUnknownFlagAndMissingValue) {
  int count = 0;
  FlagTable table;
  table.bind("--count", count, "how many");

  std::vector<std::string> unknown = {"prog", "--bogus", "1"};
  auto argv1 = argv_of(unknown);
  EXPECT_THROW(table.parse(static_cast<int>(argv1.size()), argv1.data(), 1),
               UsageError);

  std::vector<std::string> missing = {"prog", "--count"};
  auto argv2 = argv_of(missing);
  EXPECT_THROW(table.parse(static_cast<int>(argv2.size()), argv2.data(), 1),
               UsageError);

  std::vector<std::string> garbage = {"prog", "--count", "12x"};
  auto argv3 = argv_of(garbage);
  EXPECT_THROW(table.parse(static_cast<int>(argv3.size()), argv3.data(), 1),
               UsageError);
  EXPECT_EQ(count, 0);
}

TEST(CliTable, DuplicateFlagRejected) {
  int a = 0;
  int b = 0;
  FlagTable table;
  table.bind("--x", a, "first");
  EXPECT_THROW(table.bind("--x", b, "second"), UsageError);
  EXPECT_THROW(table.alias("--x"), UsageError);
}

TEST(CliScenarioFlags, DrivesScenarioAndPlan) {
  Scenario scenario;
  RunPlan plan;
  unsigned threads = 0;
  FlagTable table = scenario_flags(scenario, plan, threads);

  std::vector<std::string> args = {
      "prog",          "--nprocs",  "256",   "--ppn",    "8",
      "--stripes",     "16",        "--striping_unit",   "4M",
      "--noise_writers", "6",       "--reps", "5",
      "--seed",        "99",        "--threads", "4"};
  auto argv = argv_of(args);
  table.parse(static_cast<int>(argv.size()), argv.data(), 1);

  EXPECT_EQ(scenario.nprocs, 256);
  EXPECT_EQ(scenario.procs_per_node, 8);
  EXPECT_EQ(scenario.ior.hints.striping_factor, 16u);
  EXPECT_EQ(scenario.ior.hints.striping_unit, 4_MiB);
  EXPECT_EQ(scenario.noise.writers, 6u);
  EXPECT_EQ(plan.reps(), 5u);
  EXPECT_EQ(plan.seed(), 99u);
  EXPECT_EQ(threads, 4u);
}

TEST(CliScenarioFlags, HintsStringRejectsUnknownKey) {
  Scenario scenario;
  RunPlan plan;
  unsigned threads = 0;
  FlagTable table = scenario_flags(scenario, plan, threads);

  std::vector<std::string> good = {"prog", "--hints",
                                   "striping_factor=8;romio_cb_write=disable"};
  auto argv1 = argv_of(good);
  table.parse(static_cast<int>(argv1.size()), argv1.data(), 1);
  EXPECT_EQ(scenario.ior.hints.striping_factor, 8u);

  std::vector<std::string> bad = {"prog", "--hints", "no_such_hint=1"};
  auto argv2 = argv_of(bad);
  EXPECT_THROW(table.parse(static_cast<int>(argv2.size()), argv2.data(), 1),
               UsageError);
}

TEST(CliEnumFlags, LinkPolicyParsesOrListsChoices) {
  Scenario scenario;
  RunPlan plan;
  unsigned threads = 0;
  FlagTable table = scenario_flags(scenario, plan, threads);

  std::vector<std::string> good = {"prog", "--link_policy", "fair_share"};
  auto argv1 = argv_of(good);
  table.parse(static_cast<int>(argv1.size()), argv1.data(), 1);
  EXPECT_EQ(scenario.platform.link_policy, sim::LinkPolicy::fair_share);

  std::vector<std::string> dashed = {"prog", "--link-policy", "fifo"};
  auto argv2 = argv_of(dashed);
  table.parse(static_cast<int>(argv2.size()), argv2.data(), 1);
  EXPECT_EQ(scenario.platform.link_policy, sim::LinkPolicy::fifo);

  // An unknown name is a UsageError whose message lists every valid
  // choice — never a silently kept default.
  std::vector<std::string> bad = {"prog", "--link_policy", "weighted"};
  auto argv3 = argv_of(bad);
  try {
    table.parse(static_cast<int>(argv3.size()), argv3.data(), 1);
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("fifo"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fair_share"), std::string::npos) << msg;
    EXPECT_NE(msg.find("weighted"), std::string::npos) << msg;
  }
  EXPECT_EQ(scenario.platform.link_policy, sim::LinkPolicy::fifo);
}

TEST(CliEnumFlags, SchedPolicyParsesOrListsChoices) {
  Scenario scenario;
  RunPlan plan;
  unsigned threads = 0;
  FlagTable table = scenario_flags(scenario, plan, threads);

  using lustre::sched::SchedPolicy;
  std::vector<std::string> good = {"prog", "--sched_policy", "job_fair"};
  auto argv1 = argv_of(good);
  table.parse(static_cast<int>(argv1.size()), argv1.data(), 1);
  EXPECT_EQ(scenario.platform.oss_sched_policy, SchedPolicy::job_fair);

  for (const char* alias : {"--sched-policy", "--oss_sched_policy"}) {
    std::vector<std::string> via = {"prog", alias, "token_bucket"};
    auto argv2 = argv_of(via);
    table.parse(static_cast<int>(argv2.size()), argv2.data(), 1);
    EXPECT_EQ(scenario.platform.oss_sched_policy, SchedPolicy::token_bucket)
        << alias;
    scenario.platform.oss_sched_policy = SchedPolicy::fifo;
  }

  std::vector<std::string> bad = {"prog", "--sched_policy", "drr"};
  auto argv3 = argv_of(bad);
  try {
    table.parse(static_cast<int>(argv3.size()), argv3.data(), 1);
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("fifo"), std::string::npos) << msg;
    EXPECT_NE(msg.find("job_fair"), std::string::npos) << msg;
    EXPECT_NE(msg.find("token_bucket"), std::string::npos) << msg;
  }
  EXPECT_EQ(scenario.platform.oss_sched_policy, SchedPolicy::fifo);
}

TEST(CliEnumFlags, PlacementParsesOrListsChoices) {
  Scenario scenario;
  RunPlan plan;
  unsigned threads = 0;
  FlagTable table = scenario_flags(scenario, plan, threads);

  using lustre::PlacementKind;
  std::vector<std::string> good = {"prog", "--placement", "load_aware"};
  auto argv1 = argv_of(good);
  table.parse(static_cast<int>(argv1.size()), argv1.data(), 1);
  EXPECT_EQ(scenario.platform.ost_placement, PlacementKind::load_aware);

  std::vector<std::string> via = {"prog", "--ost_placement", "node_affine"};
  auto argv2 = argv_of(via);
  table.parse(static_cast<int>(argv2.size()), argv2.data(), 1);
  EXPECT_EQ(scenario.platform.ost_placement, PlacementKind::node_affine);

  std::vector<std::string> bad = {"prog", "--placement", "striped"};
  auto argv3 = argv_of(bad);
  try {
    table.parse(static_cast<int>(argv3.size()), argv3.data(), 1);
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("uniform_random"), std::string::npos) << msg;
    EXPECT_NE(msg.find("round_robin"), std::string::npos) << msg;
    EXPECT_NE(msg.find("load_aware"), std::string::npos) << msg;
    EXPECT_NE(msg.find("node_affine"), std::string::npos) << msg;
  }
  EXPECT_EQ(scenario.platform.ost_placement, PlacementKind::node_affine);
}

TEST(CliEnumFlags, AdmissionFlagsParseStrictly) {
  Scenario scenario;
  RunPlan plan;
  unsigned threads = 0;
  FlagTable table = scenario_flags(scenario, plan, threads);

  using harness::AdmissionPolicy;
  std::vector<std::string> good = {"prog", "--admission", "threshold",
                                   "--admit_dload", "1.5",
                                   "--admit_min_stripes", "4"};
  auto argv1 = argv_of(good);
  table.parse(static_cast<int>(argv1.size()), argv1.data(), 1);
  EXPECT_EQ(scenario.admission.policy, AdmissionPolicy::threshold);
  EXPECT_EQ(scenario.admission.max_dload, 1.5);
  EXPECT_EQ(scenario.admission.min_stripes, 4u);

  // 'inf' disables the limit without switching the policy back.
  std::vector<std::string> inf = {"prog", "--admit_dload", "inf"};
  auto argv2 = argv_of(inf);
  table.parse(static_cast<int>(argv2.size()), argv2.data(), 1);
  EXPECT_TRUE(std::isinf(scenario.admission.max_dload));

  std::vector<std::string> bad = {"prog", "--admission", "never"};
  auto argv3 = argv_of(bad);
  try {
    table.parse(static_cast<int>(argv3.size()), argv3.data(), 1);
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("always"), std::string::npos) << msg;
    EXPECT_NE(msg.find("threshold"), std::string::npos) << msg;
    EXPECT_NE(msg.find("detune"), std::string::npos) << msg;
  }

  std::vector<std::string> zero = {"prog", "--admit_min_stripes", "0"};
  auto argv4 = argv_of(zero);
  EXPECT_THROW(
      table.parse(static_cast<int>(argv4.size()), argv4.data(), 1),
      UsageError);
}

TEST(CliEnumFlags, EventQueueParsesOrListsChoices) {
  Scenario scenario;
  RunPlan plan;
  unsigned threads = 0;
  FlagTable table = scenario_flags(scenario, plan, threads);

  EXPECT_EQ(scenario.platform.event_queue, sim::EventQueuePolicy::ladder);

  std::vector<std::string> good = {"prog", "--event_queue", "binary_heap"};
  auto argv1 = argv_of(good);
  table.parse(static_cast<int>(argv1.size()), argv1.data(), 1);
  EXPECT_EQ(scenario.platform.event_queue, sim::EventQueuePolicy::binary_heap);

  std::vector<std::string> dashed = {"prog", "--event-queue", "ladder"};
  auto argv2 = argv_of(dashed);
  table.parse(static_cast<int>(argv2.size()), argv2.data(), 1);
  EXPECT_EQ(scenario.platform.event_queue, sim::EventQueuePolicy::ladder);

  std::vector<std::string> bad = {"prog", "--event_queue", "splay"};
  auto argv3 = argv_of(bad);
  try {
    table.parse(static_cast<int>(argv3.size()), argv3.data(), 1);
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("binary_heap"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ladder"), std::string::npos) << msg;
    EXPECT_NE(msg.find("splay"), std::string::npos) << msg;
  }
  EXPECT_EQ(scenario.platform.event_queue, sim::EventQueuePolicy::ladder);
}

TEST(CliEnumFlags, SimDomainsParsesStrictly) {
  Scenario scenario;
  RunPlan plan;
  unsigned threads = 0;
  FlagTable table = scenario_flags(scenario, plan, threads);

  EXPECT_EQ(scenario.platform.sim_domains, 1u);

  std::vector<std::string> eight = {"prog", "--sim_domains", "8"};
  auto argv1 = argv_of(eight);
  table.parse(static_cast<int>(argv1.size()), argv1.data(), 1);
  EXPECT_EQ(scenario.platform.sim_domains, 8u);

  // 0 = auto (one domain per hardware thread), via the dashed alias.
  std::vector<std::string> autod = {"prog", "--sim-domains", "0"};
  auto argv2 = argv_of(autod);
  table.parse(static_cast<int>(argv2.size()), argv2.data(), 1);
  EXPECT_EQ(scenario.platform.sim_domains, 0u);

  // Garbage, trailing junk, negatives and overflow are all errors — never
  // a silent default.
  for (const char* bad : {"many", "8x", "-2", "", "4294967296"}) {
    std::vector<std::string> args = {"prog", "--sim_domains", bad};
    auto argv3 = argv_of(args);
    EXPECT_THROW(table.parse(static_cast<int>(argv3.size()), argv3.data(), 1),
                 UsageError)
        << bad;
  }
  EXPECT_EQ(scenario.platform.sim_domains, 0u);  // last good value sticks

  // The flag is documented.
  EXPECT_NE(table.usage().find("--sim_domains"), std::string::npos);
}

TEST(CliEnumFlags, SchedTuningFlagsDriveTheTuningStruct) {
  Scenario scenario;
  RunPlan plan;
  unsigned threads = 0;
  FlagTable table = scenario_flags(scenario, plan, threads);

  std::vector<std::string> args = {
      "prog", "--sched_quantum", "2M", "--sched_slots", "16",
      "--sched_job_rate_mbps", "250", "--sched_bucket_depth", "32M"};
  auto argv = argv_of(args);
  table.parse(static_cast<int>(argv.size()), argv.data(), 1);
  EXPECT_EQ(scenario.platform.oss_sched.quantum, 2_MiB);
  EXPECT_EQ(scenario.platform.oss_sched.service_slots, 16u);
  EXPECT_DOUBLE_EQ(scenario.platform.oss_sched.job_rate, mb_per_sec(250.0));
  EXPECT_EQ(scenario.platform.oss_sched.bucket_depth, 32_MiB);
}

TEST(CliEnumFlags, SchedTuningFlagsRejectDegenerateValuesByName) {
  Scenario scenario;
  RunPlan plan;
  unsigned threads = 0;
  FlagTable table = scenario_flags(scenario, plan, threads);

  // Zero / negative tuning values would wedge a scheduler (a zero quantum
  // never makes progress); the parse itself rejects them and the message
  // names the flag, not just the field.
  const std::pair<const char*, const char*> bad[] = {
      {"--sched_quantum", "0"},
      {"--sched_slots", "0"},
      {"--sched_job_rate_mbps", "0"},
      {"--sched_job_rate_mbps", "-3"},
      {"--sched_bucket_depth", "0"},
  };
  for (const auto& [flag, value] : bad) {
    std::vector<std::string> args = {"prog", flag, value};
    auto argv = argv_of(args);
    try {
      table.parse(static_cast<int>(argv.size()), argv.data(), 1);
      FAIL() << flag << "=" << value;
    } catch (const UsageError& e) {
      EXPECT_NE(std::string(e.what()).find(flag), std::string::npos)
          << e.what();
    }
  }
  // No partial writes: everything still at the platform defaults.
  const hw::PlatformParams defaults;
  EXPECT_EQ(scenario.platform.oss_sched.quantum, defaults.oss_sched.quantum);
  EXPECT_EQ(scenario.platform.oss_sched.service_slots,
            defaults.oss_sched.service_slots);
}

TEST(CliEnumFlags, CtrlFlagsDriveTheControllerConfig) {
  Scenario scenario;
  RunPlan plan;
  unsigned threads = 0;
  FlagTable table = scenario_flags(scenario, plan, threads);

  EXPECT_EQ(scenario.ctrl.mode, ctrl::CtrlMode::off);  // default: off

  std::vector<std::string> args = {"prog",     "--ctrl",          "pfl",
                                   "--ctrl_interval", "0.05",
                                   "--ctrl_cooldown", "0.2"};
  auto argv = argv_of(args);
  table.parse(static_cast<int>(argv.size()), argv.data(), 1);
  EXPECT_EQ(scenario.ctrl.mode, ctrl::CtrlMode::pfl);
  EXPECT_DOUBLE_EQ(scenario.ctrl.interval, 0.05);
  EXPECT_DOUBLE_EQ(scenario.ctrl.cooldown, 0.2);

  for (const char* mode : {"qos", "full", "off"}) {
    std::vector<std::string> one = {"prog", "--ctrl", mode};
    auto argv1 = argv_of(one);
    table.parse(static_cast<int>(argv1.size()), argv1.data(), 1);
  }
  EXPECT_EQ(scenario.ctrl.mode, ctrl::CtrlMode::off);

  // Unknown mode: strict error listing the valid choices.
  std::vector<std::string> bad = {"prog", "--ctrl", "adaptive"};
  auto argv2 = argv_of(bad);
  try {
    table.parse(static_cast<int>(argv2.size()), argv2.data(), 1);
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--ctrl"), std::string::npos) << msg;
    EXPECT_NE(msg.find("pfl"), std::string::npos) << msg;
    EXPECT_NE(msg.find("full"), std::string::npos) << msg;
  }

  // Degenerate periods are parse errors naming the flag.
  for (const auto& [flag, value] :
       std::initializer_list<std::pair<const char*, const char*>>{
           {"--ctrl_interval", "0"},
           {"--ctrl_interval", "-1"},
           {"--ctrl_cooldown", "-0.5"}}) {
    std::vector<std::string> args2 = {"prog", flag, value};
    auto argv3 = argv_of(args2);
    try {
      table.parse(static_cast<int>(argv3.size()), argv3.data(), 1);
      FAIL() << flag << "=" << value;
    } catch (const UsageError& e) {
      EXPECT_NE(std::string(e.what()).find(flag), std::string::npos)
          << e.what();
    }
  }

  // The flags are documented.
  EXPECT_NE(table.usage().find("--ctrl"), std::string::npos);
  EXPECT_NE(table.usage().find("--ctrl_interval"), std::string::npos);
}

TEST(CliTraceFlags, ParseStrictlyAndDriveTraceConfig) {
  Scenario scenario;
  RunPlan plan;
  unsigned threads = 0;
  FlagTable table = scenario_flags(scenario, plan, threads);

  std::vector<std::string> args = {"prog",        "--trace",          "full",
                                   "--trace_out", "run.{seed}.json",
                                   "--trace_interval", "0.25"};
  auto argv = argv_of(args);
  table.parse(static_cast<int>(argv.size()), argv.data(), 1);
  EXPECT_EQ(scenario.trace.mode, trace::TraceMode::full);
  EXPECT_EQ(scenario.trace.out, "run.{seed}.json");
  EXPECT_DOUBLE_EQ(scenario.trace.interval, 0.25);

  std::vector<std::string> summary = {"prog", "--trace", "summary"};
  auto argv2 = argv_of(summary);
  table.parse(static_cast<int>(argv2.size()), argv2.data(), 1);
  EXPECT_EQ(scenario.trace.mode, trace::TraceMode::summary);

  // Unknown mode: strict error listing the valid choices, no silent default.
  std::vector<std::string> bad = {"prog", "--trace", "everything"};
  auto argv3 = argv_of(bad);
  try {
    table.parse(static_cast<int>(argv3.size()), argv3.data(), 1);
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("off"), std::string::npos) << msg;
    EXPECT_NE(msg.find("summary"), std::string::npos) << msg;
    EXPECT_NE(msg.find("full"), std::string::npos) << msg;
  }
  EXPECT_EQ(scenario.trace.mode, trace::TraceMode::summary);

  // A garbage interval is an error too (never a silent zero).
  std::vector<std::string> bad2 = {"prog", "--trace_interval", "fast"};
  auto argv4 = argv_of(bad2);
  EXPECT_THROW(table.parse(static_cast<int>(argv4.size()), argv4.data(), 1),
               UsageError);
}

// --replay / --fleet flags register on top of scenario_flags (the pfsc_cli
// arrangement) and resolve into the scenario's job list via apply().
FlagTable replay_table(Scenario& scenario, RunPlan& plan, unsigned& threads,
                       replay::ReplayOptions& opts) {
  FlagTable table = scenario_flags(scenario, plan, threads);
  replay::add_replay_flags(table, opts);
  return table;
}

TEST(CliReplayFlags, ParseWithDeprecatedSpellings) {
  Scenario scenario;
  RunPlan plan;
  unsigned threads = 0;
  replay::ReplayOptions opts;
  FlagTable table = replay_table(scenario, plan, threads, opts);

  std::vector<std::string> args = {"prog", "--replay_log", "day.joblog"};
  auto argv = argv_of(args);
  table.parse(static_cast<int>(argv.size()), argv.data(), 1);
  EXPECT_EQ(opts.replay_log, "day.joblog");
  EXPECT_TRUE(opts.active());

  replay::ReplayOptions fleet_opts;
  Scenario s2;
  RunPlan p2;
  FlagTable table2 = replay_table(s2, p2, threads, fleet_opts);
  std::vector<std::string> fleet_args = {
      "prog",        "--fleet_jobs", "12",          "--fleet-mix",
      "ior:2,plfs",  "--fleet_seed", "9",           "--fleet-span",
      "30"};
  auto argv2 = argv_of(fleet_args);
  table2.parse(static_cast<int>(argv2.size()), argv2.data(), 1);
  EXPECT_TRUE(fleet_opts.fleet_requested);
  EXPECT_EQ(fleet_opts.fleet.jobs, 12u);
  EXPECT_EQ(fleet_opts.fleet.mix, "ior:2,plfs");
  EXPECT_EQ(fleet_opts.fleet.seed, 9u);
  EXPECT_DOUBLE_EQ(fleet_opts.fleet.span, 30.0);
}

TEST(CliReplayFlags, FleetParsesStrictly) {
  Scenario scenario;
  RunPlan plan;
  unsigned threads = 0;
  replay::ReplayOptions opts;
  FlagTable table = replay_table(scenario, plan, threads, opts);

  std::vector<std::string> zero = {"prog", "--fleet", "0"};
  auto argv1 = argv_of(zero);
  EXPECT_THROW(table.parse(static_cast<int>(argv1.size()), argv1.data(), 1),
               UsageError);

  std::vector<std::string> garbage = {"prog", "--fleet", "many"};
  auto argv2 = argv_of(garbage);
  EXPECT_THROW(table.parse(static_cast<int>(argv2.size()), argv2.data(), 1),
               UsageError);
}

TEST(CliReplayFlags, FleetMixUnknownTemplateListsChoices) {
  Scenario scenario;
  RunPlan plan;
  unsigned threads = 0;
  replay::ReplayOptions opts;
  FlagTable table = replay_table(scenario, plan, threads, opts);

  // The typo fails at the flag, before any run starts, and the message
  // enumerates every valid template — consistent with --link_policy.
  std::vector<std::string> bad = {"prog", "--fleet_mix", "ior:2,bogus"};
  auto argv = argv_of(bad);
  try {
    table.parse(static_cast<int>(argv.size()), argv.data(), 1);
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown template 'bogus'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ior"), std::string::npos) << msg;
    EXPECT_NE(msg.find("checkpoint"), std::string::npos) << msg;
    EXPECT_NE(msg.find("plfs"), std::string::npos) << msg;
    EXPECT_NE(msg.find("mdstorm"), std::string::npos) << msg;
  }
  EXPECT_EQ(opts.fleet.mix, replay::FleetConfig{}.mix);  // default kept
}

TEST(CliReplayFlags, ReplayAndFleetAreMutuallyExclusive) {
  replay::ReplayOptions opts;
  opts.replay_log = "day.joblog";
  opts.fleet_requested = true;
  Scenario scenario;
  EXPECT_THROW(opts.apply(scenario), UsageError);
}

TEST(CliReplayFlags, ApplyResolvesIntoTheJobList) {
  const std::string path = testing::TempDir() + "cli_mini.joblog";
  {
    std::ofstream out(path);
    out << "#PFSC-JOBLOG v1\n"
        << "meta ppn=8\n"
        << "job id=1 kind=ior arrival=0 nprocs=4 block=4M transfer=1M "
           "segments=1 collective=1 write=1 read=0 fpp=0 reorder=0 "
           "stripes=2 stripe_size=1M driver=ad_lustre file=/cli.dat\n";
  }
  replay::ReplayOptions opts;
  opts.replay_log = path;
  Scenario scenario;
  opts.apply(scenario);
  ASSERT_EQ(scenario.job_list.size(), 1u);
  EXPECT_EQ(scenario.workload, Workload::jobs);
  EXPECT_EQ(scenario.procs_per_node, 8);  // meta ppn wins
  EXPECT_EQ(scenario.job_list.front().ior.test_file, "/cli.dat");
  std::remove(path.c_str());

  replay::ReplayOptions fleet_opts;
  fleet_opts.fleet_requested = true;
  fleet_opts.fleet.jobs = 6;
  Scenario s2;
  fleet_opts.apply(s2);
  EXPECT_EQ(s2.job_list.size(), 6u);
  EXPECT_EQ(s2.workload, Workload::jobs);
}

TEST(CliReplayFlags, UsageListsReplayFlags) {
  Scenario scenario;
  RunPlan plan;
  unsigned threads = 0;
  replay::ReplayOptions opts;
  FlagTable table = replay_table(scenario, plan, threads, opts);
  const std::string usage = table.usage();
  EXPECT_NE(usage.find("--replay"), std::string::npos);
  EXPECT_NE(usage.find("--fleet"), std::string::npos);
  EXPECT_NE(usage.find("--fleet_mix"), std::string::npos);
  EXPECT_NE(usage.find("checkpoint"), std::string::npos);  // template names
}

TEST(CliScenarioFlags, UsageListsFieldNamesAndAliases) {
  Scenario scenario;
  RunPlan plan;
  unsigned threads = 0;
  FlagTable table = scenario_flags(scenario, plan, threads);
  const std::string usage = table.usage();
  EXPECT_NE(usage.find("--nprocs"), std::string::npos);
  EXPECT_NE(usage.find("--striping_factor"), std::string::npos);
  EXPECT_NE(usage.find("--stripes"), std::string::npos);  // alias survives
  EXPECT_NE(usage.find("--threads"), std::string::npos);
}

}  // namespace
}  // namespace pfsc::harness::cli
