// Tests for the disk model's contention machinery: the hot-stream window,
// linear + quadratic seek amplification, the sorted (elevator) service
// order, and stream-state cleanup.
#include <gtest/gtest.h>

#include <vector>

#include "hw/disk.hpp"

namespace pfsc::hw {
namespace {

DiskParams strict_params() {
  DiskParams p;
  p.sequential_bw = 100.0;  // 100 B/s
  p.seek_time = 1.0;
  p.per_request_overhead = 0.0;
  p.raid_full_stripe = 0;
  p.read_factor = 1.0;
  p.batch = 8;
  p.reorder_window = 0;
  p.contention_alpha = 1.0;
  p.contention_knee = 2;
  p.contention_quad_alpha = 0.0;
  p.contention_quad_knee = 1000;
  p.hot_window = 16;
  return p;
}

sim::Task writer(DiskModel& disk, DiskModel::StreamId s, int requests,
                 Bytes size) {
  for (int i = 0; i < requests; ++i) {
    co_await disk.submit(s, static_cast<Bytes>(i) * size, size, true);
  }
}

TEST(DiskContention, HotStreamsTrackRecentWindow) {
  sim::Engine eng;
  DiskModel disk(eng, strict_params());
  for (int s = 0; s < 4; ++s) {
    eng.spawn(writer(disk, static_cast<DiskModel::StreamId>(s), 8, 100));
  }
  eng.run();
  // All four streams were recently serviced (32 requests, window 16 still
  // spans several streams' tails).
  EXPECT_GE(disk.hot_streams(), 2u);
  EXPECT_LE(disk.hot_streams(), 4u);
}

TEST(DiskContention, HotWindowForgetsFinishedStreams) {
  sim::Engine eng;
  auto params = strict_params();
  params.hot_window = 4;
  DiskModel disk(eng, params);
  // Stream 1 runs and finishes; then stream 2 issues > window requests.
  eng.spawn([](DiskModel& d) -> sim::Task {
    for (int i = 0; i < 6; ++i) {
      co_await d.submit(1, static_cast<Bytes>(i) * 100, 100, true);
    }
    for (int i = 0; i < 6; ++i) {
      co_await d.submit(2, static_cast<Bytes>(i) * 100, 100, true);
    }
  }(disk));
  eng.run();
  EXPECT_EQ(disk.hot_streams(), 1u);  // only stream 2 remains hot
}

TEST(DiskContention, LinearAmplificationAboveKnee) {
  // With alpha=1 and knee=2: 4 hot streams => seek factor 1 + (4-2) = 3.
  auto aggregate_time = [](int streams) {
    sim::Engine eng;
    DiskModel disk(eng, strict_params());
    for (int s = 0; s < streams; ++s) {
      eng.spawn(writer(disk, static_cast<DiskModel::StreamId>(100 + s), 8, 100));
    }
    eng.run();
    return eng.now();
  };
  // Same total bytes (scale request count inversely) is hard; compare
  // per-byte service cost instead.
  const double t2 = aggregate_time(2) / (2 * 8);
  const double t4 = aggregate_time(4) / (4 * 8);
  EXPECT_GT(t4, t2 * 1.2);  // amplified seeks dominate
}

TEST(DiskContention, QuadraticTermKicksInPastQuadKnee) {
  auto per_request_time = [](std::uint32_t quad_knee) {
    sim::Engine eng;
    auto params = strict_params();
    params.contention_quad_alpha = 1.0;
    params.contention_quad_knee = quad_knee;
    params.hot_window = 64;
    DiskModel disk(eng, params);
    for (int s = 0; s < 8; ++s) {
      eng.spawn(writer(disk, static_cast<DiskModel::StreamId>(s), 8, 100));
    }
    eng.run();
    return eng.now() / 64.0;
  };
  const double without = per_request_time(1000);  // quad never reached
  const double with = per_request_time(4);        // 8 streams >> knee 4
  EXPECT_GT(with, without * 2.0);
}

TEST(DiskContention, ElevatorServesAscendingOffsets) {
  sim::Engine eng;
  auto params = strict_params();
  params.seek_time = 10.0;  // make out-of-order service obvious
  params.reorder_window = 1000;
  DiskModel disk(eng, params);
  std::vector<double> done_at(3);
  // Enqueue three same-stream requests in descending offset order, all at
  // t=0. The elevator should still serve them ascending (0, 200, 400), so
  // only the first pays the (new-stream) seek.
  for (int i = 2; i >= 0; --i) {
    eng.spawn([](DiskModel& d, Bytes off, double& out, sim::Engine& e) -> sim::Task {
      co_await d.submit(1, off, 100, true);
      out = e.now();
    }(disk, static_cast<Bytes>(i) * 200, done_at[static_cast<std::size_t>(i)], eng));
  }
  eng.run();
  EXPECT_LT(done_at[0], done_at[1]);
  EXPECT_LT(done_at[1], done_at[2]);
  EXPECT_EQ(disk.seeks(), 1u);  // one initial positioning, then ascending
  EXPECT_DOUBLE_EQ(eng.now(), 13.0);  // 10 seek + 3 transfers
}

TEST(DiskContention, ForgetStreamDropsPositionalState) {
  sim::Engine eng;
  DiskModel disk(eng, strict_params());
  eng.spawn([](DiskModel& d) -> sim::Task {
    co_await d.submit(7, 0, 100, true);
  }(disk));
  eng.run();
  disk.forget_stream(7);
  // A new request at the same offset is a fresh stream: pays a seek again.
  const auto seeks_before = disk.seeks();
  eng.spawn([](DiskModel& d) -> sim::Task {
    co_await d.submit(7, 100, 100, true);  // would have been contiguous
  }(disk));
  eng.run();
  EXPECT_EQ(disk.seeks(), seeks_before + 1);
}

TEST(DiskContention, MaxRunnableHighWaterMark) {
  sim::Engine eng;
  DiskModel disk(eng, strict_params());
  for (int s = 0; s < 5; ++s) {
    eng.spawn(writer(disk, static_cast<DiskModel::StreamId>(s), 2, 100));
  }
  eng.run();
  EXPECT_GE(disk.max_runnable_streams(), 4u);
  EXPECT_LE(disk.max_runnable_streams(), 5u);
}

TEST(DiskContention, SeekTimeTotalAccounted) {
  sim::Engine eng;
  DiskModel disk(eng, strict_params());
  eng.spawn(writer(disk, 1, 1, 100));
  eng.run();
  EXPECT_DOUBLE_EQ(disk.seek_time_total(), 1.0);
  EXPECT_EQ(disk.seeks(), 1u);
}

}  // namespace
}  // namespace pfsc::hw
