// Tests for the telemetry sampler: tick cadence, probe packs, bandwidth
// differentiation, CSV export and lifetime bounds.
#include <gtest/gtest.h>

#include "lustre/client.hpp"
#include "trace/telemetry.hpp"

namespace pfsc::trace {
namespace {

TEST(Sampler, TicksAtInterval) {
  sim::Engine eng;
  Sampler sampler(eng, 1.0, /*max_ticks=*/5);
  int calls = 0;
  sampler.add_probe("calls", [&] { return static_cast<double>(++calls); });
  sampler.start();
  eng.run();
  const Series& s = sampler.series(0);
  ASSERT_EQ(s.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(s.at[i], static_cast<double>(i));
  }
  EXPECT_EQ(calls, 5);
}

TEST(Sampler, WatchPredicateStopsSampling) {
  sim::Engine eng;
  Sampler sampler(eng, 1.0);
  int remaining = 3;
  sampler.add_probe("x", [] { return 0.0; });
  sampler.watch([&] { return --remaining > 0; });
  sampler.start();
  eng.run();
  EXPECT_EQ(sampler.series(0).size(), 3u);
}

TEST(Sampler, StopEndsEarly) {
  sim::Engine eng;
  Sampler sampler(eng, 1.0);
  sampler.add_probe("x", [] { return 1.0; });
  sampler.start();
  eng.spawn([](sim::Engine& e, Sampler& s) -> sim::Task {
    co_await e.delay(2.5);
    s.stop();
  }(eng, sampler));
  eng.run();
  EXPECT_EQ(sampler.series(0).size(), 3u);  // t = 0, 1, 2
}

// watch() and stop() compose: the predicate keeps the sampler alive, but
// an explicit stop() ends it immediately — and cancels the pending wake,
// so the engine drains instead of ticking out the watch predicate.
TEST(Sampler, StopOverridesWatchPredicate) {
  sim::Engine eng;
  Sampler sampler(eng, 1.0);
  sampler.add_probe("x", [] { return 1.0; });
  sampler.watch([] { return true; });  // would run to max_ticks
  sampler.start();
  eng.spawn([](sim::Engine& e, Sampler& s) -> sim::Task {
    co_await e.delay(3.5);
    s.stop();
  }(eng, sampler));
  eng.run();
  EXPECT_EQ(sampler.series(0).size(), 4u);  // t = 0, 1, 2, 3
  EXPECT_LT(eng.now(), 5.0);  // no orphaned tick timer kept the engine alive
}

// stop() is idempotent: calling it again (including after the engine has
// drained) must not throw or cancel someone else's timer.
TEST(Sampler, StopIsIdempotent) {
  sim::Engine eng;
  Sampler sampler(eng, 1.0, /*max_ticks=*/2);
  sampler.add_probe("x", [] { return 0.0; });
  sampler.start();
  eng.spawn([](sim::Engine& e, Sampler& s) -> sim::Task {
    co_await e.delay(0.5);
    s.stop();
    s.stop();
  }(eng, sampler));
  eng.run();
  EXPECT_NO_THROW(sampler.stop());
  EXPECT_EQ(sampler.series(0).size(), 1u);  // only the t=0 tick landed
}

TEST(Sampler, RegistrationAfterStartRejected) {
  sim::Engine eng;
  Sampler sampler(eng, 1.0, 1);
  sampler.add_probe("x", [] { return 0.0; });
  sampler.start();
  EXPECT_THROW(sampler.add_probe("y", [] { return 0.0; }), UsageError);
  EXPECT_THROW(sampler.start(), UsageError);
  eng.run();
}

TEST(Sampler, BandwidthTimelineDifferentiates) {
  Series cumulative;
  cumulative.name = "bytes";
  cumulative.at = {0.0, 1.0, 2.0, 3.0};
  cumulative.value = {0.0, 1e6, 3e6, 3e6};
  const Series bw = Sampler::bandwidth_timeline(cumulative);
  ASSERT_EQ(bw.size(), 3u);
  EXPECT_DOUBLE_EQ(bw.value[0], 1.0);  // 1 MB in 1 s
  EXPECT_DOUBLE_EQ(bw.value[1], 2.0);
  EXPECT_DOUBLE_EQ(bw.value[2], 0.0);
  EXPECT_EQ(bw.name, "bytes_mbps");
}

TEST(Sampler, CsvHasHeaderAndRows) {
  sim::Engine eng;
  Sampler sampler(eng, 1.0, 2);
  sampler.add_probe("a", [] { return 1.5; });
  sampler.add_probe("b", [] { return 2.5; });
  sampler.start();
  eng.run();
  const std::string csv = sampler.to_csv();
  EXPECT_NE(csv.find("time,a,b\n"), std::string::npos);
  EXPECT_NE(csv.find("0,1.5,2.5\n"), std::string::npos);
  EXPECT_NE(csv.find("1,1.5,2.5\n"), std::string::npos);
}

TEST(Sampler, ObservesRealWorkload) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 3);
  lustre::Client client(fs, "c");
  Sampler sampler(eng, 0.05, 2000);
  const auto bytes_idx = sampler.add_total_bytes_probe(fs);
  sampler.add_ost_busy_probe(fs, 0);
  sampler.add_ost_queue_probe(fs, 0);
  bool writing = true;
  sampler.watch([&] { return writing; });
  sampler.start();
  eng.spawn([](lustre::Client& c, bool& writing) -> sim::Task {
    auto f = co_await c.create("/f", lustre::StripeSettings{1, 1_MiB, 0});
    PFSC_ASSERT(f.ok());
    for (int i = 0; i < 32; ++i) {
      PFSC_ASSERT(co_await c.write(f.value, static_cast<Bytes>(i) * 1_MiB, 1_MiB) ==
                  lustre::Errno::ok);
    }
    writing = false;
  }(client, writing));
  eng.run();
  const Series& bytes = sampler.series(bytes_idx);
  ASSERT_GE(bytes.size(), 3u);
  // Monotone non-decreasing cumulative counter ending at 32 MiB.
  for (std::size_t i = 1; i < bytes.size(); ++i) {
    EXPECT_GE(bytes.value[i], bytes.value[i - 1]);
  }
  EXPECT_DOUBLE_EQ(bytes.value.back(), static_cast<double>(32_MiB));
  // The derived bandwidth timeline has positive mass.
  const Series bw = Sampler::bandwidth_timeline(bytes);
  double peak = 0.0;
  for (double v : bw.value) peak = std::max(peak, v);
  EXPECT_GT(peak, 0.0);
}

TEST(Sampler, LinkProbePacksCoverBothPolicies) {
  for (const auto policy :
       {sim::LinkPolicy::fifo, sim::LinkPolicy::fair_share}) {
    sim::Engine eng;
    auto params = hw::tiny_test_platform();
    params.link_policy = policy;
    lustre::FileSystem fs(eng, params, 3);
    lustre::Client client(fs, "c");
    // Each 4 MiB OSS transfer lasts ~5 ms on the tiny platform; sample
    // well below that so ticks land inside in-flight windows.
    Sampler sampler(eng, 0.5e-3, 5000);
    const auto fabric_idx = sampler.add_fabric_probe(fs);
    const auto oss_idx = sampler.add_oss_probe(fs, 0);
    bool writing = true;
    sampler.watch([&] { return writing; });
    sampler.start();
    eng.spawn([](lustre::Client& c, bool& writing) -> sim::Task {
      auto f = co_await c.create("/f", lustre::StripeSettings{1, 1_MiB, 0});
      PFSC_ASSERT(f.ok());
      PFSC_ASSERT(co_await c.write(f.value, 0, 16_MiB) == lustre::Errno::ok);
      writing = false;
    }(client, writing));
    eng.run();
    // Three series each, in registration order: flows, flow_mbps, util.
    EXPECT_EQ(sampler.series(fabric_idx).name, "fabric_flows");
    EXPECT_EQ(sampler.series(fabric_idx + 1).name, "fabric_flow_mbps");
    EXPECT_EQ(sampler.series(fabric_idx + 2).name, "fabric_util");
    EXPECT_EQ(sampler.series(oss_idx).name, "oss0_flows");
    // The workload must have been visible on every registered series: a
    // positive flow count and flow rate at some tick, and a utilisation
    // that ends positive and never exceeds 1.
    const char* what = link_policy_name(policy);
    double max_flows = 0.0;
    double max_rate = 0.0;
    for (std::size_t i = 0; i < sampler.series(oss_idx).size(); ++i) {
      max_flows = std::max(max_flows, sampler.series(oss_idx).value[i]);
      max_rate = std::max(max_rate, sampler.series(oss_idx + 1).value[i]);
    }
    EXPECT_GE(max_flows, 1.0) << what;
    EXPECT_GT(max_rate, 0.0) << what;
    const auto& util = sampler.series(oss_idx + 2).value;
    ASSERT_FALSE(util.empty());
    EXPECT_GT(util.back(), 0.0) << what;
    for (double u : util) EXPECT_LE(u, 1.0 + 1e-12) << what;
  }
}

}  // namespace
}  // namespace pfsc::trace
