// Metamorphic and fuzz tests: properties that must hold across equivalent
// execution paths and random workloads.
//
//  * Transport equivalence: the same logical writes produce the same final
//    file coverage whether issued collectively (two-phase, write-behind),
//    collectively without aggregation, or independently.
//  * Determinism: identical seeds produce bit-identical results; different
//    seeds produce different OST placements.
//  * PLFS fuzz: random overlapping writes from several ranks read back
//    exactly according to a last-writer-wins reference model.
#include <gtest/gtest.h>

#include <map>

#include "harness/scenario.hpp"
#include "plfs/plfs.hpp"

namespace pfsc {
namespace {

using lustre::Errno;

// ---------------------------------------------------------------------------
// Transport equivalence.
// ---------------------------------------------------------------------------

struct PathVariant {
  bool collective;
  bool cb;
  Bytes dirty_window;
};

class TransportEquivalence : public ::testing::TestWithParam<PathVariant> {};

TEST_P(TransportEquivalence, SameFinalCoverage) {
  const auto variant = GetParam();
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 42);
  mpi::Runtime rt(fs, 8, 4);
  mpiio::Hints h;
  h.driver = mpiio::Driver::ad_lustre;
  h.striping_factor = 4;
  h.striping_unit = 1_MiB;
  h.romio_cb_write = variant.cb;
  h.dirty_window = variant.dirty_window;
  mpiio::File file(rt.world(), fs, "/f", h);
  rt.run_to_completion([&](int rank) -> sim::Task {
    EXPECT_EQ(co_await file.open(rank, rt.client(rank)), Errno::ok);
    for (int seg = 0; seg < 3; ++seg) {
      // Strided with holes: 512 KiB of data every 1 MiB per rank slot.
      const Bytes off =
          (static_cast<Bytes>(seg) * 8 + static_cast<Bytes>(rank)) * 1_MiB;
      const Errno e = variant.collective
                          ? co_await file.write_at_all(rank, off, 512_KiB)
                          : co_await file.write_at(rank, off, 512_KiB);
      EXPECT_EQ(e, Errno::ok);
    }
    EXPECT_EQ(co_await file.close(rank), Errno::ok);
  });
  const lustre::Inode& node = fs.inode(file.context().ino);
  // Every variant must agree on exactly which bytes exist.
  EXPECT_EQ(node.written.total_bytes(), 24u * 512_KiB);
  for (int slot = 0; slot < 24; ++slot) {
    const Bytes off = static_cast<Bytes>(slot) * 1_MiB;
    EXPECT_TRUE(node.written.covers(off, 512_KiB)) << "slot " << slot;
    EXPECT_FALSE(node.written.covers(off + 512_KiB, 1)) << "slot " << slot;
  }
  EXPECT_EQ(node.size, 23u * 1_MiB + 512_KiB);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, TransportEquivalence,
    ::testing::Values(PathVariant{true, true, 256_MiB},   // two-phase + async
                      PathVariant{true, true, 0},         // two-phase sync
                      PathVariant{true, false, 256_MiB},  // collective, no cb
                      PathVariant{false, true, 256_MiB}   // independent
                      ));

// ---------------------------------------------------------------------------
// Determinism.
// ---------------------------------------------------------------------------

TEST(Determinism, SameSeedSameResult) {
  harness::Scenario spec;
  spec.platform = hw::tiny_test_platform();
  spec.nprocs = 8;
  spec.procs_per_node = 4;
  spec.ior.block_size = 1_MiB;
  spec.ior.transfer_size = 256_KiB;
  spec.ior.segment_count = 4;
  spec.ior.hints.driver = mpiio::Driver::ad_lustre;
  spec.ior.hints.striping_factor = 4;
  spec.ior.hints.striping_unit = 1_MiB;
  const auto a = harness::run_scenario(spec, 12345).ior;
  const auto b = harness::run_scenario(spec, 12345).ior;
  EXPECT_DOUBLE_EQ(a.write_mbps, b.write_mbps);
  EXPECT_DOUBLE_EQ(a.write_time, b.write_time);
}

TEST(Determinism, DifferentSeedsDifferentPlacement) {
  auto osts_for_seed = [](std::uint64_t seed) {
    sim::Engine eng;
    lustre::FileSystem fs(eng, hw::cab_lscratchc(), seed);
    std::vector<lustre::OstIndex> osts;
    eng.spawn([](lustre::FileSystem& fs, std::vector<lustre::OstIndex>& osts)
                  -> sim::Task {
      auto r = co_await fs.create("/f", lustre::StripeSettings{16, 1_MiB, -1});
      PFSC_ASSERT(r.ok());
      osts = fs.inode(r.value).layout.osts;
    }(fs, osts));
    eng.run();
    return osts;
  };
  EXPECT_EQ(osts_for_seed(1), osts_for_seed(1));
  EXPECT_NE(osts_for_seed(1), osts_for_seed(2));
}

TEST(Determinism, EngineEventCountIsStable) {
  auto events = [] {
    sim::Engine eng;
    lustre::FileSystem fs(eng, hw::tiny_test_platform(), 7);
    mpi::Runtime rt(fs, 4, 4);
    ior::ProbeConfig cfg;
    cfg.num_writers = 4;
    cfg.bytes_per_writer = 4_MiB;
    (void)ior::run_probe(rt, cfg);
    return eng.executed_events();
  };
  EXPECT_EQ(events(), events());
}

// ---------------------------------------------------------------------------
// PLFS fuzz against a reference model.
// ---------------------------------------------------------------------------

class PlfsFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlfsFuzz, RandomOverlappingWritesResolveLastWriterWins) {
  Rng rng(GetParam());
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), GetParam());
  lustre::Client client(fs, "fuzz");
  plfs::Plfs plfs(fs);

  constexpr Bytes kSpan = 64;  // logical blocks of 64 KiB
  constexpr Bytes kBlock = 64_KiB;
  // Reference: block -> (rank, sequence) of the last write.
  std::map<Bytes, int> reference;

  // Three ranks write random extents in a random global order; simulated
  // time orders them exactly as issued (sequential here), so the reference
  // is simply "later write wins".
  eng.spawn([](lustre::Client& client, plfs::Plfs& plfs, Rng& rng,
               std::map<Bytes, int>& reference) -> sim::Task {
    std::vector<plfs::WriteHandle> handles;
    for (int rank = 0; rank < 3; ++rank) {
      auto h = co_await plfs.open_write(client, "/fuzz", rank);
      PFSC_ASSERT(h.ok());
      handles.push_back(std::move(h.value));
    }
    for (int op = 0; op < 60; ++op) {
      const int rank = static_cast<int>(rng.uniform(3));
      const Bytes start = rng.uniform(kSpan - 1);
      const Bytes len = 1 + rng.uniform(std::min<Bytes>(kSpan - start, 8) - 1 + 1);
      PFSC_ASSERT(co_await plfs.write(client, handles[static_cast<std::size_t>(rank)],
                                      start * kBlock, len * kBlock) ==
                  lustre::Errno::ok);
      for (Bytes b = start; b < start + len; ++b) reference[b] = op;
    }
    for (auto& h : handles) {
      PFSC_ASSERT(co_await plfs.close_write(client, h) == lustre::Errno::ok);
    }
  }(client, plfs, rng, reference));
  eng.run();

  // Read back and compare structure: every written block resolves, every
  // unwritten block is a hole.
  plfs::ReadHandle reader;
  eng.spawn([](lustre::Client& client, plfs::Plfs& plfs,
               plfs::ReadHandle& reader) -> sim::Task {
    auto r = co_await plfs.open_read(client, "/fuzz");
    PFSC_ASSERT(r.ok());
    reader = std::move(r.value);
  }(client, plfs, reader));
  eng.run();

  std::vector<plfs::ReadHandle::Mapping> runs;
  for (Bytes b = 0; b < kSpan; ++b) {
    const bool written = reference.contains(b);
    EXPECT_EQ(reader.resolve(b * kBlock, kBlock, runs), written)
        << "block " << b;
  }
  // Logical size = one past the highest written block.
  if (!reference.empty()) {
    const Bytes highest = reference.rbegin()->first;
    EXPECT_EQ(reader.logical_size(), (highest + 1) * kBlock);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlfsFuzz,
                         ::testing::Values(101ull, 202ull, 303ull, 404ull,
                                           505ull, 606ull));

}  // namespace
}  // namespace pfsc
