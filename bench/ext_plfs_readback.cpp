// Extension experiment (not a paper artefact): PLFS read-back performance.
//
// The paper cites Polte et al. [23] for PLFS's read story: "due to the
// increased number of file streams, they report an increased read bandwidth
// when the data is being read back on the same number of nodes used to
// write the file". This bench checks whether that claim survives on the
// simulated lscratchc across scales: N-1 write then N-1 read through
// ad_lustre (tuned) vs ad_plfs, plus the reordered-read variant (IOR -C)
// that defeats any rank-local locality.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "harness/experiments.hpp"

int main() {
  using namespace pfsc;
  bench::banner("Extension: PLFS read-back",
                "write + read-back bandwidth, ad_lustre vs ad_plfs");
  const unsigned reps = bench::repetitions(3);
  std::printf("repetitions per point: %u\n\n", reps);

  TextTable table({"procs", "driver", "write MB/s", "read MB/s",
                   "read (reordered) MB/s"});
  FigureSeries fig("procs", {"lustre read", "plfs read"});
  for (int procs : {64, 256, 1024}) {
    double read_by_driver[2] = {0.0, 0.0};
    int idx = 0;
    for (auto driver : {mpiio::Driver::ad_lustre, mpiio::Driver::ad_plfs}) {
      RunningStats write_bw;
      RunningStats read_bw;
      RunningStats reread_bw;
      Rng seeder(0xEEADull ^ static_cast<std::uint64_t>(procs));
      for (unsigned rep = 0; rep < reps; ++rep) {
        for (bool reorder : {false, true}) {
          harness::IorRunSpec spec;
          spec.nprocs = procs;
          spec.ior.read_file = true;
          spec.ior.segment_count = 25;  // keep read phases brisk
          spec.ior.reorder_tasks = reorder ? procs / 2 : 0;
          spec.ior.hints.driver = driver;
          if (driver == mpiio::Driver::ad_lustre) {
            spec.ior.hints.striping_factor = 160;
            spec.ior.hints.striping_unit = 128_MiB;
          }
          const auto res =
              driver == mpiio::Driver::ad_plfs
                  ? harness::run_plfs_ior(spec, seeder.next_u64()).ior
                  : harness::run_single_ior(spec, seeder.next_u64());
          PFSC_ASSERT(res.err == lustre::Errno::ok);
          if (!reorder) {
            write_bw.add(res.write_mbps);
            read_bw.add(res.read_mbps);
          } else {
            reread_bw.add(res.read_mbps);
          }
        }
      }
      table.cell(fmt_int(procs))
          .cell(mpiio::driver_name(driver))
          .cell(fmt_double(write_bw.mean(), 0))
          .cell(fmt_double(read_bw.mean(), 0))
          .cell(fmt_double(reread_bw.mean(), 0));
      table.end_row();
      read_by_driver[idx++] = read_bw.mean();
    }
    fig.add_point(procs, {read_by_driver[0], read_by_driver[1]});
    std::printf("procs=%d done\n", procs);
  }
  std::printf("\n");
  table.print("Write + read-back bandwidth");
  fig.print("Read-back series");

  std::printf("Expected: PLFS reads benefit from its many independent\n"
              "backend streams at small scale (the Polte et al. effect) and\n"
              "suffer the same self-contention as writes at large scale;\n"
              "reordered reads change little (the index merge already\n"
              "decouples readers from writers).\n");
  return 0;
}
