// Extension experiment (not a paper artefact): PLFS read-back performance.
//
// The paper cites Polte et al. [23] for PLFS's read story: "due to the
// increased number of file streams, they report an increased read bandwidth
// when the data is being read back on the same number of nodes used to
// write the file". This bench checks whether that claim survives on the
// simulated lscratchc across scales: N-1 write then N-1 read through
// ad_lustre (tuned) vs ad_plfs, plus the reordered-read variant (IOR -C)
// that defeats any rank-local locality.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace pfsc;
  bench::banner("Extension: PLFS read-back",
                "write + read-back bandwidth, ad_lustre vs ad_plfs");
  const unsigned reps = bench::repetitions(3);
  const harness::ParallelRunner runner(bench::threads());
  std::printf("repetitions per point: %u, worker threads: %u\n\n", reps,
              runner.threads());

  harness::Scenario base;
  base.ior.read_file = true;
  base.ior.segment_count = 25;  // keep read phases brisk

  harness::RunPlan plan;
  plan.sweep_nprocs({64, 256, 1024});
  harness::Axis driver_axis;
  driver_axis.name = "driver";
  driver_axis.values = {0, 1};
  driver_axis.apply = [](harness::Scenario& s, double v) {
    if (v == 0) {
      s.workload = harness::Workload::ior;
      s.ior.hints.driver = mpiio::Driver::ad_lustre;
      s.ior.hints.striping_factor = 160;
      s.ior.hints.striping_unit = 128_MiB;
    } else {
      s.workload = harness::Workload::plfs;
      s.ior.hints = mpiio::Hints{};
      s.ior.hints.driver = mpiio::Driver::ad_plfs;
    }
  };
  driver_axis.label = [](double v) {
    return v == 0 ? std::string("lustre") : std::string("plfs");
  };
  plan.sweep(std::move(driver_axis));
  // Axes apply in declaration order, so nprocs is set by the time the
  // reorder axis computes its shift.
  plan.sweep("reorder", {0, 1}, [](harness::Scenario& s, double v) {
    s.ior.reorder_tasks = v != 0 ? s.nprocs / 2 : 0;
  });
  plan.repetitions(reps).base_seed(0xEEAD);
  const auto set = runner.run(base, plan);

  TextTable table({"procs", "driver", "write MB/s", "read MB/s",
                   "read (reordered) MB/s"});
  FigureSeries fig("procs", {"lustre read", "plfs read"});
  const double procs_values[] = {64, 256, 1024};
  for (std::size_t p = 0; p < 3; ++p) {
    double read_by_driver[2] = {0.0, 0.0};
    for (std::size_t d = 0; d < 2; ++d) {
      const auto& plain = set.point((p * 2 + d) * 2 + 0);
      const auto& reordered = set.point((p * 2 + d) * 2 + 1);
      RunningStats write_bw;
      RunningStats read_bw;
      RunningStats reread_bw;
      for (const auto& obs : plain.reps) {
        PFSC_ASSERT(obs.ior.err == lustre::Errno::ok);
        write_bw.add(obs.ior.write_mbps);
        read_bw.add(obs.ior.read_mbps);
      }
      for (const auto& obs : reordered.reps) {
        PFSC_ASSERT(obs.ior.err == lustre::Errno::ok);
        reread_bw.add(obs.ior.read_mbps);
      }
      table.cell(fmt_int(static_cast<long long>(procs_values[p])))
          .cell(d == 0 ? "ad_lustre" : "ad_plfs")
          .cell(fmt_double(write_bw.mean(), 0))
          .cell(fmt_double(read_bw.mean(), 0))
          .cell(fmt_double(reread_bw.mean(), 0));
      table.end_row();
      read_by_driver[d] = read_bw.mean();
    }
    fig.add_point(procs_values[p], {read_by_driver[0], read_by_driver[1]});
  }
  table.print("Write + read-back bandwidth");
  fig.print("Read-back series");

  std::printf("Expected: PLFS reads benefit from its many independent\n"
              "backend streams at small scale (the Polte et al. effect) and\n"
              "suffer the same self-contention as writes at large scale;\n"
              "reordered reads change little (the index merge already\n"
              "decouples readers from writers).\n");
  return 0;
}
