// Reproduces Table IX: stripe-collision statistics of the PLFS backend
// directory for five 4,096-process experiments. At this scale every OST is
// in use (D_inuse = 480), most serve 10-23 data files, and Eq. 6 predicts a
// mean load of 17.06 — the self-contention that collapses PLFS bandwidth to
// a fraction of tuned Lustre's.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/metrics.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace pfsc;
  bench::banner("Table IX", "PLFS backend collisions at 4,096 processes, 5 experiments");
  const unsigned reps = bench::repetitions(5);
  const int procs = 4096;

  harness::Scenario spec = harness::Scenario::plfs_ior();
  spec.nprocs = procs;
  harness::RunPlan plan;
  plan.repetitions(reps).base_seed(0x7AB9);
  const auto set = harness::ParallelRunner(bench::threads()).run(spec, plan);

  std::vector<core::ObservedContention> obs;
  std::vector<double> bws;
  for (const auto& rep : set.point(0).reps) {
    PFSC_ASSERT(rep.ior.err == lustre::Errno::ok);
    obs.push_back(rep.contention);
    bws.push_back(rep.ior.write_mbps);
    std::printf("experiment %zu done (bw %.0f MB/s, Dload %.2f)\n", obs.size(),
                rep.ior.write_mbps, rep.contention.d_load);
  }
  std::printf("\n");

  std::size_t max_k = 0;
  for (const auto& o : obs) max_k = std::max(max_k, o.histogram.size());
  const auto expect = core::occupancy_expectation(480, static_cast<unsigned>(procs), 2);

  // The interesting band: the paper's Table IX shows occupancy concentrated
  // between ~5 and ~35 files per OST; print every populated row.
  std::vector<std::string> header{"Collisions"};
  for (unsigned e = 1; e <= reps; ++e) header.push_back("Exp " + std::to_string(e));
  header.push_back("E[binomial]");
  TextTable table(header);
  for (std::size_t k = 1; k < max_k; ++k) {
    bool populated = k < expect.size() && expect[k] >= 0.05;
    for (const auto& o : obs) {
      populated = populated || (k < o.histogram.size() && o.histogram[k] > 0);
    }
    if (!populated) continue;
    std::vector<std::string> row{fmt_int(static_cast<long long>(k - 1))};
    for (const auto& o : obs) {
      row.push_back(fmt_int(k < o.histogram.size() ? o.histogram[k] : 0));
    }
    row.push_back(fmt_double(k < expect.size() ? expect[k] : 0.0, 1));
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"Dinuse"};
    for (const auto& o : obs) row.push_back(fmt_double(o.d_inuse, 0));
    row.push_back(fmt_double(core::plfs_d_inuse(procs, 480), 1));
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"Dload"};
    for (const auto& o : obs) row.push_back(fmt_double(o.d_load, 2));
    row.push_back(fmt_double(core::plfs_d_load(procs, 480), 2));
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"BW (MB/s)"};
    for (double bw : bws) row.push_back(fmt_double(bw, 0));
    row.push_back("-");
    table.add_row(std::move(row));
  }
  table.print("Table IX: PLFS backend stripe collisions, 4,096 processes\n"
              "(paper: Dinuse 480, Dload 17.07, BW 3042-3085 MB/s)");

  // Paper highlight: one experiment had a single OST serving 35 ranks.
  std::uint32_t worst = 0;
  for (const auto& o : obs) {
    worst = std::max(worst, static_cast<std::uint32_t>(o.histogram.size()) - 1);
  }
  std::printf("Busiest OST across experiments serves %u data files "
              "(paper observed up to 35).\n", worst);
  return 0;
}
