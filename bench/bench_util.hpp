// Shared helpers for the reproduction benches.
//
// Every bench binary regenerates one of the paper's tables or figures and
// prints paper-reported values next to the simulator's measurements so the
// comparison can be read (and scraped into EXPERIMENTS.md) directly.
//
// Environment knobs:
//   PFSC_REPS    — override the repetition count (default: per-bench, usually
//                  the paper's five).
//   PFSC_QUICK   — if set, run a single repetition of each point (CI smoke).
//   PFSC_THREADS — worker threads for the sweep runner (default: hardware
//                  concurrency). Results are identical for any value.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "support/stats.hpp"
#include "support/table.hpp"

namespace pfsc::bench {

inline unsigned repetitions(unsigned default_reps) {
  if (const char* quick = std::getenv("PFSC_QUICK"); quick && *quick) return 1;
  if (const char* reps = std::getenv("PFSC_REPS"); reps && *reps) {
    const long v = std::strtol(reps, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  return default_reps;
}

/// Thread count for ParallelRunner: PFSC_THREADS, else 0 (hardware
/// concurrency). The runner's output is thread-count-invariant, so this is
/// purely a wall-clock knob.
inline unsigned threads() {
  if (const char* env = std::getenv("PFSC_THREADS"); env && *env) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 0) return static_cast<unsigned>(v);
  }
  return 0;
}

inline void banner(const std::string& id, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("(paper: Wright & Jarvis, \"Quantifying the Effects of "
              "Contention on Parallel File Systems\", IPDPSW'15)\n");
  std::printf("==============================================================\n");
}

inline std::string fmt_ci(const ConfidenceInterval& ci, int precision = 0) {
  return fmt_double(ci.mean, precision) + " (" + fmt_double(ci.lower, precision) +
         ", " + fmt_double(ci.upper, precision) + ")";
}

/// Ratio printed as "x12.3".
inline std::string fmt_ratio(double num, double den) {
  if (den <= 0.0) return "n/a";
  return "x" + fmt_double(num / den, 1);
}

}  // namespace pfsc::bench
