// Reproduces Table VI: the contention metrics extrapolated to the Stampede
// I/O configuration of Behzad et al. (160 OSTs, optimal stripe count 128
// for VPIC-IO). Shows that only three simultaneous tuned jobs already load
// every OST with ~2.4 tasks on average.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/metrics.hpp"
#include "harness/scenario.hpp"

int main() {
  using namespace pfsc;
  bench::banner("Table VI", "Predicted OST load on Stampede (D_total = 160, R = 128)");

  // Paper-reported rows for comparison.
  constexpr double kPaperInuse[] = {128.00, 153.60, 158.72, 159.74, 159.95,
                                    159.99, 160.00, 160.00, 160.00, 160.00};
  constexpr double kPaperLoad[] = {1.00, 1.67, 2.42, 3.21, 4.00,
                                   4.80, 5.60, 6.40, 7.20, 8.00};

  TextTable table({"Jobs", "Dinuse (paper)", "Dinuse (Eq.2)", "Dreq",
                   "Dload (paper)", "Dload (Eq.4)"});
  const auto rows = core::contention_table(128.0, 10, 160.0);
  for (const auto& pt : rows) {
    table.cell(fmt_int(pt.jobs))
        .cell(fmt_double(kPaperInuse[pt.jobs - 1], 2))
        .cell(fmt_double(pt.d_inuse, 2))
        .cell(fmt_int(static_cast<long long>(pt.d_req)))
        .cell(fmt_double(kPaperLoad[pt.jobs - 1], 2))
        .cell(fmt_double(pt.d_load, 2));
    table.end_row();
  }
  table.print("Table VI: Stampede configuration of Behzad et al. [5]");

  std::printf("Section V conclusion check: with three simultaneous tasks the\n"
              "OSTs are used by %.2f tasks on average (paper: \"two or three\").\n\n",
              pfsc::core::d_load(128, 3, 160));

  // Validation beyond the paper: simulate 3 contending VPIC-shaped jobs on
  // the Stampede-like platform and compare the measured census with Eq. 2/4.
  harness::Scenario spec = harness::Scenario::multi(3, 256);
  spec.platform = hw::stampede_fs();
  spec.ior.hints.driver = mpiio::Driver::ad_lustre;
  spec.ior.hints.striping_factor = 128;
  spec.ior.hints.striping_unit = 1_MiB;
  const auto res = harness::run_scenario(spec, 0x57A);
  std::printf("Simulated on stampede_fs (3 x 256-proc jobs, R=128):\n"
              "  measured Dinuse %.1f (Eq.2: %.2f)   measured Dload %.2f "
              "(Eq.4: %.2f)\n",
              res.contention.d_inuse, pfsc::core::d_inuse_uniform(128, 3, 160),
              res.contention.d_load, pfsc::core::d_load(128, 3, 160));
  return 0;
}
