// Reproduces Figure 1: IOR write bandwidth over 1,024 processes (64 nodes)
// on the simulated lscratchc, sweeping the Lustre stripe count
// {8,16,32,64,128,160} x stripe size {32,64,128,256} MiB through the tuned
// ad_lustre driver, against the stock configuration (2 x 1 MiB through
// ad_ufs, which ignores hints). The paper's headline: default 313 MB/s,
// best 15,609 MB/s at 160 x 128 MiB — a 49x improvement.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "harness/experiments.hpp"

namespace {

using namespace pfsc;

double sweep_point(mpiio::Driver driver, std::uint32_t stripes, Bytes size,
                   unsigned reps, std::uint64_t base_seed) {
  const auto stats = harness::repeat(reps, base_seed, [&](std::uint64_t seed) {
    harness::IorRunSpec spec;  // Table II config is the ior::Config default
    spec.ior.hints.driver = driver;
    spec.ior.hints.striping_factor = stripes;
    spec.ior.hints.striping_unit = size;
    const auto res = harness::run_single_ior(spec, seed);
    PFSC_ASSERT(res.err == lustre::Errno::ok && res.verified);
    return res.write_mbps;
  });
  return stats.ci.mean;
}

}  // namespace

int main() {
  bench::banner("Figure 1",
                "IOR write bandwidth vs stripe count x stripe size, 1,024 procs");
  const unsigned reps = bench::repetitions(3);
  std::printf("repetitions per point: %u\n\n", reps);

  const double default_bw =
      sweep_point(mpiio::Driver::ad_ufs, 0, 0, reps, 0xD0);
  std::printf("Default configuration (ad_ufs, 2 x 1 MiB): %.0f MB/s "
              "(paper: 313 MB/s)\n\n", default_bw);

  const std::vector<std::uint32_t> counts{8, 16, 32, 64, 128, 160};
  const std::vector<Bytes> sizes{32_MiB, 64_MiB, 128_MiB, 256_MiB};

  FigureSeries fig("OSTs", {"32M", "64M", "128M", "256M"});
  TextTable table({"stripes", "32 MiB", "64 MiB", "128 MiB", "256 MiB"});
  double best = 0.0;
  std::uint32_t best_count = 0;
  Bytes best_size = 0;
  for (auto count : counts) {
    std::vector<std::string> row{fmt_int(count)};
    std::vector<double> points;
    for (auto size : sizes) {
      const double bw = sweep_point(mpiio::Driver::ad_lustre, count, size, reps,
                                    0xF16'0000 + count);
      row.push_back(fmt_double(bw, 0));
      points.push_back(bw);
      if (bw > best) {
        best = bw;
        best_count = count;
        best_size = size;
      }
    }
    table.add_row(std::move(row));
    fig.add_point(count, std::move(points));
  }
  table.print("Write bandwidth (MB/s) by stripe count x stripe size");
  fig.print("Figure 1 series");

  std::printf("Best: %.0f MB/s at %u stripes x %s (paper: 15,609 MB/s at 160 x 128 MiB)\n",
              best, best_count, format_bytes(best_size).c_str());
  std::printf("Improvement over default: %s (paper: x49)\n",
              bench::fmt_ratio(best, default_bw).c_str());
  return 0;
}
