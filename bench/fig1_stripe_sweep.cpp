// Reproduces Figure 1: IOR write bandwidth over 1,024 processes (64 nodes)
// on the simulated lscratchc, sweeping the Lustre stripe count
// {8,16,32,64,128,160} x stripe size {32,64,128,256} MiB through the tuned
// ad_lustre driver, against the stock configuration (2 x 1 MiB through
// ad_ufs, which ignores hints). The paper's headline: default 313 MB/s,
// best 15,609 MB/s at 160 x 128 MiB — a 49x improvement.
//
// The whole grid is one RunPlan executed by the ParallelRunner; set
// PFSC_THREADS to change wall-clock time without changing a single digit
// of the output.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "harness/runner.hpp"

namespace {

using namespace pfsc;

}  // namespace

int main() {
  bench::banner("Figure 1",
                "IOR write bandwidth vs stripe count x stripe size, 1,024 procs");
  const unsigned reps = bench::repetitions(3);
  const harness::ParallelRunner runner(bench::threads());
  std::printf("repetitions per point: %u, worker threads: %u\n\n", reps,
              runner.threads());

  harness::Scenario base;  // Table II config is the Scenario default

  // Stock configuration: ad_ufs ignores the striping hints.
  harness::Scenario stock = base;
  stock.ior.hints.driver = mpiio::Driver::ad_ufs;
  harness::RunPlan stock_plan;
  stock_plan.repetitions(reps).base_seed(0xD0);
  const double default_bw = runner.run(stock, stock_plan).point(0).ci.mean;
  std::printf("Default configuration (ad_ufs, 2 x 1 MiB): %.0f MB/s "
              "(paper: 313 MB/s)\n\n", default_bw);

  const std::vector<double> counts{8, 16, 32, 64, 128, 160};
  const std::vector<double> sizes{
      static_cast<double>(32_MiB), static_cast<double>(64_MiB),
      static_cast<double>(128_MiB), static_cast<double>(256_MiB)};

  base.ior.hints.driver = mpiio::Driver::ad_lustre;
  harness::RunPlan plan;
  plan.sweep_striping_factor(counts)
      .sweep_striping_unit(sizes)
      .repetitions(reps)
      .base_seed(0xF16'0000);
  const auto set = runner.run(base, plan);

  FigureSeries fig("OSTs", {"32M", "64M", "128M", "256M"});
  TextTable table({"stripes", "32 MiB", "64 MiB", "128 MiB", "256 MiB"});
  double best = 0.0;
  std::uint32_t best_count = 0;
  Bytes best_size = 0;
  // The grid expands with the last axis (stripe size) fastest: one table
  // row per stripe count.
  for (std::size_t c = 0; c < counts.size(); ++c) {
    std::vector<std::string> row{fmt_int(static_cast<long long>(counts[c]))};
    std::vector<double> points;
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      const auto& point = set.point(c * sizes.size() + s);
      const double bw = point.ci.mean;
      row.push_back(fmt_double(bw, 0));
      points.push_back(bw);
      if (bw > best) {
        best = bw;
        best_count = static_cast<std::uint32_t>(point.coords[0]);
        best_size = static_cast<Bytes>(point.coords[1]);
      }
    }
    table.add_row(std::move(row));
    fig.add_point(counts[c], std::move(points));
  }
  table.print("Write bandwidth (MB/s) by stripe count x stripe size");
  fig.print("Figure 1 series");

  std::printf("Best: %.0f MB/s at %u stripes x %s (paper: 15,609 MB/s at 160 x 128 MiB)\n",
              best, best_count, format_bytes(best_size).c_str());
  std::printf("Improvement over default: %s (paper: x49)\n",
              bench::fmt_ratio(best, default_bw).c_str());
  if (const char* csv = std::getenv("PFSC_CSV"); csv && *csv) {
    std::printf("\n%s", set.to_csv().c_str());
  }
  return 0;
}
