// Reproduces Table VIII: stripe-collision statistics of the PLFS backend
// directory for five 512-process experiments. Each run creates 512 data
// files of 2 default stripes; the table lists, per experiment, the number
// of OSTs used by exactly (k+1) data files ("k collisions"), the measured
// D_inuse / D_load, the achieved bandwidth — and the Eq. 5/6 predictions
// plus the binomial expectation of each histogram row.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/metrics.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace pfsc;
  bench::banner("Table VIII", "PLFS backend collisions at 512 processes, 5 experiments");
  const unsigned reps = bench::repetitions(5);
  const int procs = 512;

  harness::Scenario spec = harness::Scenario::plfs_ior();
  spec.nprocs = procs;
  harness::RunPlan plan;
  plan.repetitions(reps).base_seed(0x7AB8);
  const auto set = harness::ParallelRunner(bench::threads()).run(spec, plan);

  std::vector<core::ObservedContention> obs;
  std::vector<double> bws;
  for (const auto& rep : set.point(0).reps) {
    PFSC_ASSERT(rep.ior.err == lustre::Errno::ok);
    obs.push_back(rep.contention);
    bws.push_back(rep.ior.write_mbps);
  }

  std::size_t max_k = 0;
  for (const auto& o : obs) max_k = std::max(max_k, o.histogram.size());
  const auto expect = core::occupancy_expectation(480, static_cast<unsigned>(procs), 2);

  std::vector<std::string> header{"Collisions"};
  for (unsigned e = 1; e <= reps; ++e) header.push_back("Exp " + std::to_string(e));
  header.push_back("E[binomial]");
  TextTable table(header);
  for (std::size_t k = 1; k < max_k; ++k) {
    std::vector<std::string> row{fmt_int(static_cast<long long>(k - 1))};
    for (const auto& o : obs) {
      row.push_back(fmt_int(k < o.histogram.size() ? o.histogram[k] : 0));
    }
    row.push_back(fmt_double(k < expect.size() ? expect[k] : 0.0, 1));
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"Dinuse"};
    for (const auto& o : obs) row.push_back(fmt_double(o.d_inuse, 0));
    row.push_back(fmt_double(core::plfs_d_inuse(procs, 480), 1));
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"Dload"};
    for (const auto& o : obs) row.push_back(fmt_double(o.d_load, 2));
    row.push_back(fmt_double(core::plfs_d_load(procs, 480), 2));
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"BW (MB/s)"};
    for (double bw : bws) row.push_back(fmt_double(bw, 0));
    row.push_back("-");
    table.add_row(std::move(row));
  }
  table.print("Table VIII: PLFS backend stripe collisions, 512 processes\n"
              "(paper: Dinuse 418-433, Dload 2.36-2.45, BW 9768-12063 MB/s)");

  std::printf("Eq. 5/6 prediction at 512 ranks: Dinuse %.1f, Dload %.2f "
              "(paper quotes 2.4)\n",
              pfsc::core::plfs_d_inuse(procs, 480),
              pfsc::core::plfs_d_load(procs, 480));
  return 0;
}
