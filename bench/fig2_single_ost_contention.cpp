// Reproduces Figure 2: per-process bandwidth when 1..16 writers contend a
// single OST (each writing its own 1-stripe file pinned to the same target
// via the stripe_offset hint), against the ideal-scaling band derived from
// the single-writer 95% confidence interval scaled by 1/n.
//
// The paper's observation: up to ~3 writers stay near the band; beyond
// that, contention pushes per-process bandwidth well below ideal.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace pfsc;
  bench::banner("Figure 2", "Per-process bandwidth on one contended OST");
  const unsigned reps = bench::repetitions(5);
  const harness::ParallelRunner runner(bench::threads());
  std::printf("repetitions per point: %u, worker threads: %u\n\n", reps,
              runner.threads());

  harness::Scenario probe = harness::Scenario::probe(1, 64_MiB);
  // lscratchc is a shared-user system: light random background load gives
  // the single-writer runs the natural variance the paper's ideal band is
  // built from.
  probe.noise.writers = 12;
  probe.noise.bytes_per_writer = 256_MiB;
  probe.noise.stripes = 8;

  std::vector<double> writer_counts;
  for (std::uint32_t n = 1; n <= 16; ++n) writer_counts.push_back(n);
  harness::RunPlan plan;
  plan.sweep_writers(writer_counts).repetitions(reps).base_seed(0xF2'0000);
  const auto set = runner.run(probe, plan);

  const ConfidenceInterval solo = set.point(0).ci;
  std::printf("Single writer: %s MB/s — the ideal band below is this CI / n\n\n",
              bench::fmt_ci(solo, 1).c_str());

  TextTable table({"writers", "ideal lower", "ideal upper", "measured",
                   "vs ideal mid"});
  FigureSeries fig("writers", {"measured", "ideal-lo", "ideal-hi"});
  for (const auto& point : set.points()) {
    const double n = point.coords[0];
    const double lo = solo.lower / n;
    const double hi = solo.upper / n;
    table.cell(fmt_int(static_cast<long long>(n)))
        .cell(fmt_double(lo, 1))
        .cell(fmt_double(hi, 1))
        .cell(fmt_double(point.ci.mean, 1))
        .cell(fmt_double(point.ci.mean / ((lo + hi) / 2.0) * 100.0, 0) + "%");
    table.end_row();
    fig.add_point(n, {point.ci.mean, lo, hi});
  }
  table.print("Per-process bandwidth (MB/s) vs contended writers on one OST");
  fig.print("Figure 2 series");

  std::printf("Expected shape: within/near the band for <= 3 writers, then\n"
              "diverging below it (the paper's \"three simultaneous tasks or\n"
              "more ... noticeable performance overhead\").\n");
  return 0;
}
