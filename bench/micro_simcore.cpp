// Google-benchmark microbenchmarks for the simulator's hot paths: event
// dispatch, coroutine spawn/join, disk service, the contention metrics and
// the two-phase planner. These guard the simulator's own performance (a
// 4,096-rank PLFS experiment executes tens of millions of events).
#include <benchmark/benchmark.h>

#include <coroutine>

#include "core/metrics.hpp"
#include "harness/runner.hpp"
#include "hw/disk.hpp"
#include "lustre/extent_map.hpp"
#include "mpiio/two_phase.hpp"
#include "sim/domain.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/link.hpp"
#include "sim/resources.hpp"
#include "sim/task.hpp"
#include "support/rng.hpp"

namespace {

using namespace pfsc;

sim::Task delay_loop(sim::Engine& eng, int hops) {
  for (int i = 0; i < hops; ++i) co_await eng.delay(1.0);
}

void BM_EngineEventDispatch(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    eng.spawn(delay_loop(eng, hops));
    eng.run();
    benchmark::DoNotOptimize(eng.now());
  }
  state.SetItemsProcessed(state.iterations() * hops);
}
BENCHMARK(BM_EngineEventDispatch)->Arg(1000)->Arg(100000);

// -- scheduler throughput ----------------------------------------------------
// The classic DES "hold model": a steady-state population of N pending
// events; each step pops the minimum and schedules a replacement a random
// increment into the future. This isolates the queue from coroutine cost
// and is the ≥1.5x events/sec gate in .github/bench-baseline.json (the
// heap pays O(log n) comparisons per operation, the ladder O(1)).
void BM_EventQueueHold(benchmark::State& state, sim::EventQueuePolicy policy) {
  const int population = static_cast<int>(state.range(0));
  auto q = sim::make_event_queue(policy);
  Rng rng(0xB0DE);
  std::uint64_t seq = 1;
  for (int i = 0; i < population; ++i) {
    q->push({rng.uniform_double(0.0, 1.0), 0.0, seq++, std::noop_coroutine()});
  }
  for (auto _ : state) {
    const sim::ScheduledEvent ev = q->pop();
    q->push({ev.t + rng.uniform_double(0.0, 1.0), ev.t, seq++,
             std::noop_coroutine()});
    benchmark::DoNotOptimize(seq);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_EventQueueHold, binary_heap,
                  sim::EventQueuePolicy::binary_heap)
    ->Arg(1024)
    ->Arg(65536);
BENCHMARK_CAPTURE(BM_EventQueueHold, ladder, sim::EventQueuePolicy::ladder)
    ->Arg(1024)
    ->Arg(65536);

// End-to-end engine dispatch with a large concurrent timer population —
// the queue-bound regime a 4,096-rank run puts the engine in.
void BM_EngineManyTimers(benchmark::State& state,
                         sim::EventQueuePolicy policy) {
  const int tasks = static_cast<int>(state.range(0));
  constexpr int kHops = 64;
  for (auto _ : state) {
    sim::Engine eng(policy);
    for (int i = 0; i < tasks; ++i) {
      eng.spawn(delay_loop(eng, kHops));
    }
    eng.run();
    benchmark::DoNotOptimize(eng.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * tasks * kHops);
}
BENCHMARK_CAPTURE(BM_EngineManyTimers, binary_heap,
                  sim::EventQueuePolicy::binary_heap)
    ->Arg(4096);
BENCHMARK_CAPTURE(BM_EngineManyTimers, ladder, sim::EventQueuePolicy::ladder)
    ->Arg(4096);

// -- coroutine frame churn ---------------------------------------------------

sim::Co<int> churn_child(sim::Engine& eng) {
  co_await eng.delay(1.0e-6);
  co_return 1;
}

sim::Task churn_rpc(sim::Engine& eng, std::uint64_t* acc) {
  *acc += static_cast<std::uint64_t>(co_await churn_child(eng));
}

// Steady-state RPC-like frame churn on ONE engine: every batch allocates
// and frees a Task + Co frame pair per item, so after the first batch the
// arena serves every frame from its free lists (frame_arena().reused_
// allocations() confirms). This is the benchmark the frame-pooling half of
// the hot-path work is judged by.
void BM_FrameChurn(benchmark::State& state) {
  constexpr int kBatch = 256;
  sim::Engine eng;
  std::uint64_t acc = 0;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) eng.spawn(churn_rpc(eng, &acc));
    eng.run();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.counters["frame_reuse_ratio"] = static_cast<double>(
      eng.frame_arena().reused_allocations()) /
      static_cast<double>(eng.frame_arena().reused_allocations() +
                          eng.frame_arena().fresh_allocations());
}
BENCHMARK(BM_FrameChurn);

// -- Figure 3 wall clock -----------------------------------------------------
// One full Fig. 3 four-job contention run (4 x 1,024 processes, tuned
// 160 x 128 MiB layout) per iteration: the end-to-end number the ISSUE's
// "measurable Fig. 3 wall-clock improvement" criterion refers to. One
// iteration is seconds of work, so the perf job runs exactly one per
// policy.
void BM_Fig3FourJobs(benchmark::State& state, sim::EventQueuePolicy policy) {
  harness::Scenario s = harness::Scenario::multi(4, 1024);
  s.ior.hints.driver = mpiio::Driver::ad_lustre;
  s.ior.hints.striping_factor = 160;
  s.ior.hints.striping_unit = 128_MiB;
  s.platform.event_queue = policy;
  for (auto _ : state) {
    const auto obs = harness::run_scenario(s, 0xF3F3);
    benchmark::DoNotOptimize(obs.total_mbps);
  }
  // One item = one full Fig. 3 run, so items_per_second is 1/wall-clock and
  // the ladder/heap ratio in bench-baseline.json reads as the end-to-end
  // speedup.
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_Fig3FourJobs, binary_heap,
                  sim::EventQueuePolicy::binary_heap)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_Fig3FourJobs, ladder, sim::EventQueuePolicy::ladder)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// The same Fig. 3 quartet with the adaptive controller dialled in. The
// ctrl_off capture is the exact BM_Fig3FourJobs/ladder scenario spelled
// through the ctrl config (mode off constructs no controller and adds no
// engine events), so its ratio against BM_Fig3FourJobs/ladder in
// bench-baseline.json is the "a disabled control plane costs nothing"
// gate. The ctrl_pfl capture prices the active controller: a 10 ms tick
// loop plus the layout retunes it decides on.
void BM_AdaptiveQuartet(benchmark::State& state, ctrl::CtrlMode mode) {
  harness::Scenario s = harness::Scenario::multi(4, 1024);
  s.ior.hints.driver = mpiio::Driver::ad_lustre;
  s.ior.hints.striping_factor = 160;
  s.ior.hints.striping_unit = 128_MiB;
  s.platform.event_queue = sim::EventQueuePolicy::ladder;
  s.ctrl.mode = mode;
  s.ctrl.interval = 0.01;
  s.ctrl.cooldown = 0.02;
  for (auto _ : state) {
    const auto obs = harness::run_scenario(s, 0xF3F3);
    benchmark::DoNotOptimize(obs.total_mbps);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_AdaptiveQuartet, ctrl_off, ctrl::CtrlMode::off)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_AdaptiveQuartet, ctrl_pfl, ctrl::CtrlMode::pfl)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// The same four-job Fig. 3 contention run, partitioned across simulation
// domains (1 = the classic single engine; 4 and 8 shard the 32 OSS across
// worker threads under conservative lookahead). Results are bit-identical
// at every domain count, so items_per_second ratios between captures read
// directly as the parallel speedup. Gated in bench-baseline.json with
// min_cpus guards: the ratio is only meaningful when the host actually
// has cores for the domain workers.
void BM_ShardedFig3(benchmark::State& state, std::uint32_t domains) {
  harness::Scenario s = harness::Scenario::multi(4, 1024);
  s.ior.hints.driver = mpiio::Driver::ad_lustre;
  s.ior.hints.striping_factor = 160;
  s.ior.hints.striping_unit = 128_MiB;
  s.platform.sim_domains = domains;
  for (auto _ : state) {
    const auto obs = harness::run_scenario(s, 0xF3F3);
    benchmark::DoNotOptimize(obs.total_mbps);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_ShardedFig3, domains_1, 1u)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_ShardedFig3, domains_4, 4u)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_ShardedFig3, domains_8, 8u)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Oversubscription gate: the same contention workload at MORE domains
// than the host has cores (2x hardware_threads, clamped by the shard
// count), against the single-engine capture. With the spin-only barrier
// this regime collapsed ~150x (a spinner burns the quantum the peer
// needs); the hybrid spin-then-park barrier must keep it within 3x —
// the ratio gate in bench-baseline.json carries no min_cpus because the
// capture is oversubscribed on every host by construction.
void BM_ShardedOversubscribed(benchmark::State& state, bool oversub) {
  harness::Scenario s = harness::Scenario::multi(4, 256);
  s.ior.segment_count = 2;
  s.ior.hints.driver = mpiio::Driver::ad_lustre;
  s.ior.hints.striping_factor = 16;
  s.ior.hints.striping_unit = 4_MiB;
  s.platform.sim_domains = oversub ? 2 * sim::hardware_threads() : 1;
  for (auto _ : state) {
    const auto obs = harness::run_scenario(s, 0x05B5);
    benchmark::DoNotOptimize(obs.total_mbps);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_ShardedOversubscribed, domains_1, false)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_ShardedOversubscribed, domains_2x_cores, true)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Capability run: one 4,096-rank job striped wide over the full lscratchc
// system (480 OSTs / 32 OSS). This is the scale target the sharded engine
// exists for; domains = 0 resolves to one domain per hardware thread.
void BM_Lscratchc4096(benchmark::State& state, std::uint32_t domains) {
  harness::Scenario s;
  s.nprocs = 4096;
  s.procs_per_node = 16;
  s.ior.segment_count = 2;
  s.ior.hints.driver = mpiio::Driver::ad_lustre;
  s.ior.hints.striping_factor = 160;
  s.ior.hints.striping_unit = 64_MiB;
  s.platform.sim_domains = domains;
  for (auto _ : state) {
    const auto obs = harness::run_scenario(s, 0x4096);
    benchmark::DoNotOptimize(obs.total_mbps);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_Lscratchc4096, domains_1, 1u)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_Lscratchc4096, domains_4, 4u)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_Lscratchc4096, domains_auto, 0u)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

sim::Task spawn_fanout(sim::Engine& eng, int width) {
  std::vector<sim::Task> children;
  children.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    sim::Task t = delay_loop(eng, 1);
    eng.spawn(t);
    children.push_back(std::move(t));
  }
  co_await sim::join_all(std::move(children));
}

void BM_TaskSpawnJoin(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    eng.spawn(spawn_fanout(eng, width));
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_TaskSpawnJoin)->Arg(100)->Arg(4096);

sim::Task disk_client(hw::DiskModel& disk, int stream, int requests) {
  for (int i = 0; i < requests; ++i) {
    co_await disk.submit(static_cast<hw::DiskModel::StreamId>(stream),
                         static_cast<Bytes>(i) * 1_MiB, 1_MiB, true);
  }
}

void BM_DiskServiceInterleaved(benchmark::State& state) {
  const int streams = static_cast<int>(state.range(0));
  constexpr int kRequests = 256;
  for (auto _ : state) {
    sim::Engine eng;
    hw::DiskModel disk(eng, hw::DiskParams{});
    for (int s = 0; s < streams; ++s) {
      eng.spawn(disk_client(disk, s, kRequests / streams));
    }
    eng.run();
    benchmark::DoNotOptimize(disk.bytes_serviced());
  }
  state.SetItemsProcessed(state.iterations() * kRequests);
}
BENCHMARK(BM_DiskServiceInterleaved)->Arg(1)->Arg(16);

sim::Task fair_share_flow(sim::Engine& eng, sim::FairSharePipe& pipe,
                          Seconds start, Bytes bytes) {
  if (start > 0.0) co_await eng.delay(start);
  co_await pipe.transfer(bytes);
}

// Guards the O(log n) per-arrival/departure claim of the processor-sharing
// link: doubling the in-flight flow count must not blow past the heap's
// logarithmic growth (a linear rescan per event would show up as ~10x
// per-item cost between 1,000 and 10,000 flows).
void BM_FairSharePipeFlows(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    sim::FairSharePipe pipe(eng, mb_per_sec(1000.0));
    // Staggered arrivals so the flow set churns while thousands are in
    // flight (each arrival re-costs the heap; each departure re-arms).
    for (int i = 0; i < flows; ++i) {
      eng.spawn(fair_share_flow(eng, pipe, 1.0e-6 * static_cast<double>(i),
                                1_MiB));
    }
    eng.run();
    benchmark::DoNotOptimize(pipe.bytes_moved());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FairSharePipeFlows)->Arg(1000)->Arg(10000);

void BM_MetricsContentionTable(benchmark::State& state) {
  for (auto _ : state) {
    auto rows = core::contention_table(160.0, 64, 480.0);
    benchmark::DoNotOptimize(rows.data());
  }
}
BENCHMARK(BM_MetricsContentionTable);

void BM_MetricsOccupancy(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    auto e = core::occupancy_expectation(480, n, 2);
    benchmark::DoNotOptimize(e.data());
  }
}
BENCHMARK(BM_MetricsOccupancy)->Arg(512)->Arg(4096);

void BM_ExtentMapInsert(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) {
    lustre::ExtentMap map;
    for (int i = 0; i < 1000; ++i) {
      map.insert(rng.uniform(1u << 20), 1 + rng.uniform(4096));
    }
    benchmark::DoNotOptimize(map.total_bytes());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ExtentMapInsert);

void BM_TwoPhasePlanCyclic(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  std::vector<mpiio::IoRequest> reqs;
  for (int r = 0; r < ranks; ++r) {
    reqs.push_back({r, static_cast<Bytes>(r) * 4_MiB, 1_MiB});
  }
  std::vector<int> aggs;
  for (int a = 0; a < ranks; a += 16) aggs.push_back(a);
  for (auto _ : state) {
    auto plans = mpiio::plan_two_phase_cyclic(reqs, aggs, 16_MiB, 128_MiB);
    benchmark::DoNotOptimize(plans.data());
  }
  state.SetItemsProcessed(state.iterations() * ranks);
}
BENCHMARK(BM_TwoPhasePlanCyclic)->Arg(1024)->Arg(4096);

void BM_RngSampleWithoutReplacement(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    auto sample = rng.sample_without_replacement(480, 160);
    benchmark::DoNotOptimize(sample.data());
  }
}
BENCHMARK(BM_RngSampleWithoutReplacement);

}  // namespace

BENCHMARK_MAIN();
