// Ablation: FIFO store-and-forward vs fair-share (processor-sharing) link
// model, holding everything else fixed.
//
// Part A isolates the link layer with a Figure-2-style single-OST probe on
// a platform variant whose only bottleneck is the 600 MB/s OSS front end
// (disk, NIC, fabric and per-process ceilings pushed out of the way; one
// bulk RPC per writer). Under processor sharing each of n writers must see
// rate/n simultaneously; the FIFO server instead drains whole transfers in
// arrival order, so writer k measures rate/k and the mean lands at
// rate*H_n/n — far outside the fair-share band. The exit status asserts
// both halves of that prediction.
//
// Part B reruns the Figure-3 four-contending-jobs experiment (full Cab
// platform, disks and all) under both policies, reporting how much of the
// headline contention number survives the change of link model.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "harness/runner.hpp"

namespace {

using namespace pfsc;

/// Everything fast except the OSS front end: the link is the experiment.
hw::PlatformParams link_bound_platform(sim::LinkPolicy policy) {
  hw::PlatformParams p = hw::cab_lscratchc();
  p.name = "link-bound";
  p.link_policy = policy;
  p.per_process_bw = mb_per_sec(1.0e6);
  p.node_nic_bw = mb_per_sec(1.0e6);
  p.fabric_bw = mb_per_sec(1.0e6);
  p.rpc_latency = 0.0;
  p.max_rpc_size = 64_MiB;  // one bulk transfer per writer
  p.ost_disk.sequential_bw = mb_per_sec(1.0e6);
  p.ost_disk.seek_time = 0.0;
  p.ost_disk.per_request_overhead = 0.0;
  p.ost_disk.contention_alpha = 0.0;
  p.ost_disk.contention_quad_alpha = 0.0;
  return p;
}

/// Mean per-process probe bandwidth with `writers` contenders on OST 0.
double probe_mean_mbps(sim::LinkPolicy policy, std::uint32_t writers) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, link_bound_platform(policy), /*seed=*/1);
  mpi::Runtime rt(fs, static_cast<int>(writers), /*procs_per_node=*/1);
  ior::ProbeConfig cfg;
  cfg.num_writers = writers;
  cfg.bytes_per_writer = 64_MiB;
  cfg.transfer_size = 64_MiB;  // single buffered write per rank
  cfg.target_ost = 0;
  return ior::run_probe(rt, cfg).mean_mbps;
}

bool check(bool ok, const char* what) {
  if (!ok) std::printf("FAIL: %s\n", what);
  return ok;
}

}  // namespace

int main() {
  bench::banner("Ablation", "FIFO vs fair-share link model");
  const bool quick = std::getenv("PFSC_QUICK") != nullptr;
  bool pass = true;

  // -- Part A: link-bound Figure-2-style probe ---------------------------
  const double rate = to_mbps(link_bound_platform(sim::LinkPolicy::fifo).oss_bw);
  std::printf("\nPart A — single-OST probe, OSS link (%.0f MB/s) the only\n"
              "bottleneck, one 64 MiB bulk transfer per writer.\n\n",
              rate);
  TextTable table({"writers", "ideal rate/n", "fifo mean", "fifo vs ideal",
                   "fair mean", "fair vs ideal"});
  double fifo_worst = 0.0;
  double fair_worst = 0.0;
  for (const std::uint32_t n : {1u, 2u, 4u, 8u}) {
    const double ideal = rate / static_cast<double>(n);
    const double fifo = probe_mean_mbps(sim::LinkPolicy::fifo, n);
    const double fair = probe_mean_mbps(sim::LinkPolicy::fair_share, n);
    const double fifo_dev = std::abs(fifo - ideal) / ideal;
    const double fair_dev = std::abs(fair - ideal) / ideal;
    fifo_worst = std::max(fifo_worst, fifo_dev);
    fair_worst = std::max(fair_worst, fair_dev);
    table.cell(fmt_int(n))
        .cell(fmt_double(ideal, 1))
        .cell(fmt_double(fifo, 1))
        .cell(fmt_double(fifo_dev * 100.0, 1) + "%")
        .cell(fmt_double(fair, 1))
        .cell(fmt_double(fair_dev * 100.0, 1) + "%");
    table.end_row();
  }
  table.print("Mean per-process bandwidth (MB/s) vs contending writers");
  std::printf("Worst deviation from ideal rate/n: fifo %.1f%%, fair_share %.1f%%\n",
              fifo_worst * 100.0, fair_worst * 100.0);
  pass &= check(fair_worst <= 0.10,
                "fair_share mean per-process bandwidth within 10% of rate/n");
  pass &= check(fifo_worst > 0.10,
                "fifo diverges by more than 10% (expected: it serialises)");

  // -- Part B: Figure 3 under both policies ------------------------------
  const int nprocs = quick ? 256 : 1024;
  std::printf("\nPart B — four contending tuned IOR jobs (%d ranks each) on\n"
              "the full Cab platform under both policies.\n\n", nprocs);
  harness::Scenario multi;
  multi.workload = harness::Workload::multi;
  multi.jobs = 4;
  multi.nprocs = nprocs;
  multi.ior.hints.driver = mpiio::Driver::ad_lustre;
  multi.ior.hints.striping_factor = 160;
  multi.ior.hints.striping_unit = 128_MiB;

  TextTable fig3({"policy", "solo", "job 1", "job 2", "job 3", "job 4",
                  "mean", "reduction"});
  std::vector<double> means;
  for (const auto policy :
       {sim::LinkPolicy::fifo, sim::LinkPolicy::fair_share}) {
    multi.platform.link_policy = policy;
    harness::Scenario solo = multi;
    solo.workload = harness::Workload::ior;
    const double solo_mbps = harness::run_scenario(solo, 0xAB1).ior.write_mbps;
    const auto obs = harness::run_scenario(multi, 0xAB3);
    fig3.cell(sim::link_policy_name(policy)).cell(fmt_double(solo_mbps, 0));
    for (const auto& job : obs.per_job) {
      PFSC_ASSERT(job.err == lustre::Errno::ok && job.verified);
      fig3.cell(fmt_double(job.write_mbps, 0));
    }
    fig3.cell(fmt_double(obs.metric, 0))
        .cell(bench::fmt_ratio(solo_mbps, obs.metric));
    fig3.end_row();
    means.push_back(obs.metric);
  }
  fig3.print("Per-job write bandwidth (MB/s), four simultaneous tasks");
  const double divergence = std::abs(means[1] - means[0]) / means[0];
  std::printf("Mean per-job bandwidth divergence between policies: %.1f%%\n",
              divergence * 100.0);
  std::printf("(The headline contention effect is disk- and topology-driven,\n"
              "so it must survive the link-model swap largely intact.)\n");

  std::printf("\n%s\n", pass ? "ABLATION PASS" : "ABLATION FAIL");
  return pass ? 0 : 1;
}
