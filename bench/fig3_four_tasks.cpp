// Reproduces Figure 3: four identical IOR executions (1,024 processes
// each, tuned 160 x 128 MiB layout) running simultaneously, over five
// repetitions. The paper measures ~4,500 MB/s per task — a 3.44x drop from
// the solo optimum of 15,609 MB/s.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace pfsc;
  bench::banner("Figure 3", "Four contending tuned IOR tasks, five repetitions");
  const unsigned reps = bench::repetitions(5);
  const harness::ParallelRunner runner(bench::threads());

  // Solo reference for the reduction factor.
  harness::Scenario solo_spec;
  solo_spec.ior.hints.driver = mpiio::Driver::ad_lustre;
  solo_spec.ior.hints.striping_factor = 160;
  solo_spec.ior.hints.striping_unit = 128_MiB;
  const double solo = harness::run_scenario(solo_spec, 0xF3).ior.write_mbps;
  std::printf("Solo tuned job: %.0f MB/s (paper: 15,609 MB/s)\n\n", solo);

  harness::Scenario multi = harness::Scenario::multi(4, 1024, solo_spec.ior);
  harness::RunPlan plan;
  plan.repetitions(reps).base_seed(0xF3F3);
  const auto set = runner.run(multi, plan);

  TextTable table({"repetition", "task 1", "task 2", "task 3", "task 4",
                   "mean", "total"});
  RunningStats all_tasks;
  const auto& point = set.point(0);
  for (std::size_t rep = 0; rep < point.reps.size(); ++rep) {
    const auto& obs = point.reps[rep];
    std::vector<std::string> row{fmt_int(static_cast<long long>(rep + 1))};
    for (const auto& job : obs.per_job) {
      PFSC_ASSERT(job.err == lustre::Errno::ok && job.verified);
      row.push_back(fmt_double(job.write_mbps, 0));
      all_tasks.add(job.write_mbps);
    }
    row.push_back(fmt_double(obs.metric, 0));
    row.push_back(fmt_double(obs.total_mbps, 0));
    table.add_row(std::move(row));
  }
  table.print("Per-task write bandwidth (MB/s), four simultaneous tasks");

  std::printf("Mean per task: %.0f MB/s (paper: ~4,500 MB/s)\n", all_tasks.mean());
  std::printf("Reduction from solo optimum: %s (paper: x3.44)\n",
              bench::fmt_ratio(solo, all_tasks.mean()).c_str());
  return 0;
}
