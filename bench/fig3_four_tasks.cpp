// Reproduces Figure 3: four identical IOR executions (1,024 processes
// each, tuned 160 x 128 MiB layout) running simultaneously, over five
// repetitions. The paper measures ~4,500 MB/s per task — a 3.44x drop from
// the solo optimum of 15,609 MB/s.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "harness/experiments.hpp"

int main() {
  using namespace pfsc;
  bench::banner("Figure 3", "Four contending tuned IOR tasks, five repetitions");
  const unsigned reps = bench::repetitions(5);

  // Solo reference for the reduction factor.
  harness::IorRunSpec solo_spec;
  solo_spec.ior.hints.driver = mpiio::Driver::ad_lustre;
  solo_spec.ior.hints.striping_factor = 160;
  solo_spec.ior.hints.striping_unit = 128_MiB;
  const double solo = harness::run_single_ior(solo_spec, 0xF3).write_mbps;
  std::printf("Solo tuned job: %.0f MB/s (paper: 15,609 MB/s)\n\n", solo);

  TextTable table({"repetition", "task 1", "task 2", "task 3", "task 4",
                   "mean", "total"});
  RunningStats all_tasks;
  Rng seeder(0xF3F3);
  for (unsigned rep = 1; rep <= reps; ++rep) {
    harness::MultiJobSpec spec;
    spec.jobs = 4;
    spec.procs_per_job = 1024;
    spec.ior.hints.driver = mpiio::Driver::ad_lustre;
    spec.ior.hints.striping_factor = 160;
    spec.ior.hints.striping_unit = 128_MiB;
    const auto res = harness::run_multi_ior(spec, seeder.next_u64());
    std::vector<std::string> row{fmt_int(rep)};
    for (const auto& job : res.per_job) {
      PFSC_ASSERT(job.err == lustre::Errno::ok && job.verified);
      row.push_back(fmt_double(job.write_mbps, 0));
      all_tasks.add(job.write_mbps);
    }
    row.push_back(fmt_double(res.mean_mbps, 0));
    row.push_back(fmt_double(res.total_mbps, 0));
    table.add_row(std::move(row));
    std::printf("rep %u done\n", rep);
  }
  std::printf("\n");
  table.print("Per-task write bandwidth (MB/s), four simultaneous tasks");

  std::printf("Mean per task: %.0f MB/s (paper: ~4,500 MB/s)\n", all_tasks.mean());
  std::printf("Reduction from solo optimum: %s (paper: x3.44)\n",
              bench::fmt_ratio(solo, all_tasks.mean()).c_str());
  return 0;
}
