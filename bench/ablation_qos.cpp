// Ablation: OSS request scheduling policies (fifo vs job_fair vs
// token_bucket), holding the data path underneath fixed.
//
// Part A isolates the scheduler on a link-bound single-OSS platform with
// deliberately asymmetric jobs: job 0 runs three writer processes, job 1
// runs one, all streaming to the same OST. FIFO serves per *request*, so
// job 0's extra ranks buy it ~3x the bytes (Jain over jobs ~0.8);
// deficit round robin serves per *job*, so both jobs get equal byte
// shares (Jain ~1) at the same total throughput; the token bucket caps
// both jobs at job_rate, buying isolation by giving up work conservation.
// The exit status asserts all three signatures.
//
// Part B reruns the Figure-3 four-contending-jobs experiment (full Cab
// platform, disks and all) under the three policies: per-job bandwidth,
// total bandwidth and the Jain index per policy. The paper's four jobs
// are identical, so FIFO is already nearly fair — the assertion that
// matters is that job_fair keeps Jain >= 0.99 while total bandwidth stays
// within 5% of FIFO (fairness without a throughput bill), and that a
// token bucket sized to 60% of a job's FIFO share actually binds.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "harness/runner.hpp"
#include "support/stats.hpp"

namespace {

using namespace pfsc;

/// Everything fast except one 600 MB/s OSS front end: the scheduler and
/// the link are the experiment.
hw::PlatformParams sched_bound_platform(lustre::sched::SchedPolicy policy) {
  hw::PlatformParams p = hw::cab_lscratchc();
  p.name = "sched-bound";
  p.oss_sched_policy = policy;
  p.oss_count = 1;
  p.ost_count = 1;
  p.per_process_bw = mb_per_sec(1.0e6);
  p.node_nic_bw = mb_per_sec(1.0e6);
  p.fabric_bw = mb_per_sec(1.0e6);
  p.rpc_latency = 0.0;
  p.ost_disk.sequential_bw = mb_per_sec(1.0e6);
  p.ost_disk.seek_time = 0.0;
  p.ost_disk.per_request_overhead = 0.0;
  p.ost_disk.contention_alpha = 0.0;
  p.ost_disk.contention_quad_alpha = 0.0;
  // Small service window so the backlog waits where the policy can
  // reorder it; one max-size RPC per deficit round.
  p.oss_sched.service_slots = 4;
  p.oss_sched.quantum = p.max_rpc_size;
  p.oss_sched.job_rate = mb_per_sec(150.0);
  p.oss_sched.bucket_depth = 16_MiB;
  return p;
}

sim::Task stream_writer(lustre::Client& client, std::string path, Bytes total) {
  lustre::StripeSettings settings;
  settings.stripe_count = 1;
  settings.stripe_size = 1_MiB;
  settings.stripe_offset = 0;
  auto file = co_await client.create(std::move(path), settings);
  PFSC_ASSERT(file.ok());
  (void)co_await client.write(file.value, 0, total);
}

struct MicroResult {
  double job0_mb = 0.0;   // bytes served for job 0 (three writers), MB
  double job1_mb = 0.0;   // bytes served for job 1 (one writer), MB
  double jain = 1.0;      // over the two jobs' served bytes
};

/// Three job-0 writers vs one job-1 writer on one OSS for `horizon`
/// simulated seconds; returns per-job served bytes from the scheduler.
MicroResult run_micro(lustre::sched::SchedPolicy policy, Seconds horizon) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, sched_bound_platform(policy), /*seed=*/1);
  std::vector<std::unique_ptr<lustre::Client>> clients;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<lustre::Client>(
        fs, "w" + std::to_string(i)));
    clients.back()->set_job(i < 3 ? 0 : 1);
    eng.spawn(stream_writer(*clients.back(), "/f" + std::to_string(i), 1_GiB));
  }
  eng.run_until(horizon);

  MicroResult r;
  const auto served = fs.sched_served_by_job();
  r.job0_mb = static_cast<double>(served.count(0) ? served.at(0) : 0) / 1.0e6;
  r.job1_mb = static_cast<double>(served.count(1) ? served.at(1) : 0) / 1.0e6;
  r.jain = fs.sched_jain();
  return r;
}

bool check(bool ok, const char* what) {
  if (!ok) std::printf("FAIL: %s\n", what);
  return ok;
}

}  // namespace

int main() {
  bench::banner("Ablation", "OSS request scheduling: fifo vs job_fair vs token_bucket");
  const bool quick = std::getenv("PFSC_QUICK") != nullptr;
  bool pass = true;

  using lustre::sched::SchedPolicy;
  const SchedPolicy kPolicies[] = {SchedPolicy::fifo, SchedPolicy::job_fair,
                                   SchedPolicy::token_bucket};

  // -- Part A: asymmetric jobs on one scheduler-bound OSS ----------------
  const Seconds horizon = 0.25;
  const hw::PlatformParams micro = sched_bound_platform(SchedPolicy::fifo);
  std::printf("\nPart A — job 0 (3 writers) vs job 1 (1 writer) on one\n"
              "%.0f MB/s OSS for %.2fs; token bucket caps each job at\n"
              "%.0f MB/s (+%s burst).\n\n",
              to_mbps(micro.oss_bw), horizon,
              to_mbps(micro.oss_sched.job_rate),
              format_bytes(micro.oss_sched.bucket_depth).c_str());
  TextTable table({"policy", "job 0 (MB)", "job 1 (MB)", "total", "jain"});
  std::vector<MicroResult> micro_results;
  for (const SchedPolicy policy : kPolicies) {
    const MicroResult r = run_micro(policy, horizon);
    micro_results.push_back(r);
    table.cell(lustre::sched::sched_policy_name(policy))
        .cell(fmt_double(r.job0_mb, 1))
        .cell(fmt_double(r.job1_mb, 1))
        .cell(fmt_double(r.job0_mb + r.job1_mb, 1))
        .cell(fmt_double(r.jain, 4));
    table.end_row();
  }
  table.print("Per-job served bytes under asymmetric demand");

  const MicroResult& fifo_r = micro_results[0];
  const MicroResult& fair_r = micro_results[1];
  const MicroResult& tbf_r = micro_results[2];
  pass &= check(fifo_r.jain < 0.95,
                "fifo skews toward the job with more ranks (jain < 0.95)");
  pass &= check(fair_r.jain >= 0.99, "job_fair equalises byte shares (jain >= 0.99)");
  const double fair_total = fair_r.job0_mb + fair_r.job1_mb;
  const double fifo_total = fifo_r.job0_mb + fifo_r.job1_mb;
  pass &= check(std::abs(fair_total - fifo_total) / fifo_total <= 0.05,
                "job_fair total within 5% of fifo (work conserving)");
  const double cap_mb =
      to_mbps(micro.oss_sched.job_rate) * horizon +
      static_cast<double>(micro.oss_sched.bucket_depth) / 1.0e6 +
      static_cast<double>(micro.max_rpc_size) / 1.0e6;
  pass &= check(tbf_r.job0_mb <= cap_mb && tbf_r.job1_mb <= cap_mb,
                "token_bucket holds both jobs under rate*T + burst");

  // -- Part B: Figure 3 under the three policies -------------------------
  const int nprocs = quick ? 256 : 1024;
  std::printf("\nPart B — four contending tuned IOR jobs (%d ranks each) on\n"
              "the full Cab platform under each scheduling policy.\n\n", nprocs);
  harness::Scenario multi;
  multi.workload = harness::Workload::multi;
  multi.jobs = 4;
  multi.nprocs = nprocs;
  multi.ior.hints.driver = mpiio::Driver::ad_lustre;
  multi.ior.hints.striping_factor = 160;
  multi.ior.hints.striping_unit = 128_MiB;

  harness::Scenario solo = multi;
  solo.workload = harness::Workload::ior;
  const double solo_mbps = harness::run_scenario(solo, 0xAB5).ior.write_mbps;

  TextTable fig3({"policy", "job 1", "job 2", "job 3", "job 4", "total",
                  "jain", "reduction"});
  double total_fifo = 0.0;
  double total_fair = 0.0;
  double jain_fair = 0.0;
  double tbf_cap_mbps = 0.0;
  double tbf_worst_job = 0.0;
  for (const SchedPolicy policy : kPolicies) {
    multi.platform.oss_sched_policy = policy;
    if (policy == SchedPolicy::token_bucket) {
      // Size the cap to 60% of a job's FIFO share so it visibly binds:
      // per-OSS rate = 60% of (total / jobs / oss_count).
      tbf_cap_mbps = 0.6 * total_fifo / 4.0;
      multi.platform.oss_sched.job_rate = mb_per_sec(
          tbf_cap_mbps / static_cast<double>(multi.platform.oss_count));
    }
    const auto obs = harness::run_scenario(multi, 0xAB7);
    std::vector<double> per_job;
    fig3.cell(lustre::sched::sched_policy_name(policy));
    for (const auto& job : obs.per_job) {
      PFSC_ASSERT(job.err == lustre::Errno::ok && job.verified);
      per_job.push_back(job.write_mbps);
      fig3.cell(fmt_double(job.write_mbps, 0));
    }
    const double jain = jain_index(per_job);
    fig3.cell(fmt_double(obs.total_mbps, 0))
        .cell(fmt_double(jain, 4))
        .cell(bench::fmt_ratio(solo_mbps, obs.metric));
    fig3.end_row();
    if (policy == SchedPolicy::fifo) total_fifo = obs.total_mbps;
    if (policy == SchedPolicy::job_fair) {
      total_fair = obs.total_mbps;
      jain_fair = jain;
    }
    if (policy == SchedPolicy::token_bucket) {
      tbf_worst_job = *std::max_element(per_job.begin(), per_job.end());
    }
  }
  fig3.print("Per-job write bandwidth (MB/s), four simultaneous tasks");
  std::printf("solo baseline: %.0f MB/s; token bucket cap: %.0f MB/s per job\n",
              solo_mbps, tbf_cap_mbps);

  pass &= check(jain_fair >= 0.99, "job_fair jain >= 0.99 on the Fig. 3 quartet");
  pass &= check(std::abs(total_fair - total_fifo) / total_fifo <= 0.05,
                "job_fair total bandwidth within 5% of fifo");
  // Burst allowance: the bucket depth amortised over the run is small, so
  // 10% headroom over the configured cap is generous.
  pass &= check(tbf_worst_job <= tbf_cap_mbps * 1.10,
                "token_bucket holds every job under its configured cap");
  // The cap must actually throttle: every job well below its FIFO share.
  // (It lands far below the cap itself, not just below the FIFO share: the
  // collective phases idle the buckets between bursts, and the forfeited
  // refill — capped at bucket_depth — is the price of strict isolation.)
  pass &= check(tbf_worst_job <= 0.8 * total_fifo / 4.0,
                "token_bucket visibly throttles (<= 80% of a FIFO share)");

  std::printf("\n%s\n", pass ? "ABLATION PASS" : "ABLATION FAIL");
  return pass ? 0 : 1;
}
