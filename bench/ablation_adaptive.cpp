// Ablation: online adaptive tuning vs every static configuration under a
// shifting multi-job load.
//
// The workload is the Fig. 3 quartet with arrivals pulled apart so the
// right answer changes mid-run: job 0 writes alone first (a sole writer
// wants the widest stripes the platform allows), then three more jobs
// arrive and contend (now every extra stripe adds competing streams to
// disks whose seek cost amplifies per hot stream — hw/disk.hpp — so
// narrower layouts win). No single static stripe count can be right in
// both phases.
//
// Static arms sweep the platform default stripe count with the controller
// off; the adaptive arm starts from the SAME platform default and runs
// `--ctrl pfl`: wide progressive layouts while calm, narrow once the
// storm is detected. The exit status asserts the adaptive run recovers at
// least half of the worst->best static gap — the controller must land
// near the best static choice without being told the phase boundaries.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "harness/scenario.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using namespace pfsc;

/// The shifting-load quartet: job 0 alone from t = 0, jobs 1-3 arriving
/// staggered once job 0 is mid-run. striping_factor stays 0 throughout so
/// the platform default (static arms) or the PFL table (adaptive arm)
/// decides every layout.
harness::Scenario shifting_quartet(int nprocs, Seconds storm_at,
                                   Seconds storm_gap) {
  std::vector<harness::JobSpec> jobs;
  for (int j = 0; j < 4; ++j) {
    harness::JobSpec spec;
    spec.kind = harness::JobKind::ior;
    spec.job_id = static_cast<std::uint32_t>(j);
    spec.nprocs = nprocs;
    spec.arrival = j == 0 ? 0.0 : storm_at + storm_gap * (j - 1);
    spec.ior.segment_count = 4;
    spec.ior.hints.driver = mpiio::Driver::ad_lustre;
    spec.ior.hints.striping_unit = 1_MiB;
    spec.ior.test_file = "/adaptive/quartet.dat." + std::to_string(j);
    jobs.push_back(spec);
  }
  harness::Scenario s = harness::Scenario::from_jobs(std::move(jobs));
  s.procs_per_node = 16;
  return s;
}

bool check(bool ok, const char* what) {
  if (!ok) std::printf("FAIL: %s\n", what);
  return ok;
}

}  // namespace

int main() {
  bench::banner("Ablation",
                "adaptive tuning (--ctrl pfl) vs static stripe counts");
  const bool quick = std::getenv("PFSC_QUICK") != nullptr;
  bool pass = true;

  const int nprocs = quick ? 32 : 64;
  const Seconds storm_at = 0.25;
  const Seconds storm_gap = 0.05;
  const std::uint64_t seed = 0xADA7;

  std::printf("\njob 0 solo from t=0; jobs 1-3 arrive at t=%.2f+k*%.2f s\n"
              "(%d ranks each, shared files, stripe count left to the\n"
              "platform default or the controller).\n\n",
              storm_at, storm_gap, nprocs);

  // -- static arms: sweep the default stripe count, controller off -------
  const std::uint32_t kStatic[] = {1, 4, 16, 64, 160};
  TextTable table({"arm", "stripes", "mean MB/s", "total MB/s", "jain"});
  double best = 0.0, worst = 1.0e30;
  std::uint32_t best_width = 0, worst_width = 0;
  for (const std::uint32_t width : kStatic) {
    harness::Scenario s = shifting_quartet(nprocs, storm_at, storm_gap);
    s.platform.default_stripe_count = width;
    const auto obs = harness::run_scenario(s, seed);
    std::vector<double> per_job;
    for (const auto& job : obs.per_job) {
      PFSC_ASSERT(job.err == lustre::Errno::ok && job.verified);
      per_job.push_back(job.write_mbps);
    }
    table.cell("static")
        .cell(std::to_string(width))
        .cell(fmt_double(obs.metric, 0))
        .cell(fmt_double(obs.total_mbps, 0))
        .cell(fmt_double(jain_index(per_job), 4));
    table.end_row();
    if (obs.metric > best) {
      best = obs.metric;
      best_width = width;
    }
    if (obs.metric < worst) {
      worst = obs.metric;
      worst_width = width;
    }
  }

  // -- adaptive arm: same default, controller decides --------------------
  harness::Scenario adaptive = shifting_quartet(nprocs, storm_at, storm_gap);
  adaptive.ctrl.mode = ctrl::CtrlMode::pfl;
  adaptive.ctrl.interval = 0.01;
  adaptive.ctrl.cooldown = 0.02;
  const auto obs = harness::run_scenario(adaptive, seed);
  std::vector<double> per_job;
  for (const auto& job : obs.per_job) {
    PFSC_ASSERT(job.err == lustre::Errno::ok && job.verified);
    per_job.push_back(job.write_mbps);
  }
  table.cell("adaptive")
      .cell("ctrl pfl")
      .cell(fmt_double(obs.metric, 0))
      .cell(fmt_double(obs.total_mbps, 0))
      .cell(fmt_double(jain_index(per_job), 4));
  table.end_row();
  table.print("Mean per-job write bandwidth under the shifting load");

  std::printf("\ncontroller decisions:\n");
  for (const auto& a : obs.ctrl_actions) {
    std::printf("  t=%7.3f  %-10s %-12s %s\n", a.at, a.endpoint.c_str(),
                a.rule.c_str(), a.detail.c_str());
  }

  const double gap = best - worst;
  const double recovered = (obs.metric - worst) / gap;
  std::printf("\nstatic best %.0f MB/s (stripes=%u), worst %.0f MB/s "
              "(stripes=%u); adaptive %.0f MB/s recovers %.0f%% of the gap\n",
              best, best_width, worst, worst_width, obs.metric,
              100.0 * recovered);

  pass &= check(gap > 0.0, "the static arms actually disagree");
  pass &= check(!obs.ctrl_actions.empty(), "the controller acted");
  bool saw_storm = false;
  for (const auto& a : obs.ctrl_actions) {
    if (a.rule == "pfl_storm") saw_storm = true;
  }
  pass &= check(saw_storm, "the controller detected the storm");
  pass &= check(recovered >= 0.5,
                "adaptive recovers >= half the worst->best static gap");

  std::printf("\n%s\n", pass ? "ABLATION PASS" : "ABLATION FAIL");
  return pass ? 0 : 1;
}
