// Reproduces Table V and Figure 4: four simultaneous IOR tasks with the
// per-job stripe request R swept over {32, 64, 96, 128, 160} (stripe size
// 128 MiB), five repetitions each. Reports average/total bandwidth, the
// expected number of OSTs contended by exactly 1..4 of the tasks, and
// predicted (Eq. 2/4) vs measured D_inuse / D_load.
//
// The paper's point: dropping from 160 to 64 stripes costs ~14% bandwidth
// while freeing ~37% of the OSTs; even 32 stripes loses little.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/metrics.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace pfsc;
  bench::banner("Table V / Figure 4",
                "Four contending tasks vs per-job stripe request R");
  const unsigned reps = bench::repetitions(5);
  const harness::ParallelRunner runner(bench::threads());
  std::printf("repetitions per point: %u, worker threads: %u\n\n", reps,
              runner.threads());

  // Paper's Table V rows for side-by-side comparison.
  struct PaperRow {
    unsigned r;
    double avg_bw, usage1, usage2, usage3, usage4, pred_inuse, pred_load,
        act_inuse, act_load;
  };
  const PaperRow paper[] = {
      {32, 3654.06, 103.2, 11.2, 0.8, 0.0, 115.76, 1.11, 115.20, 1.11},
      {64, 3910.51, 172.6, 35.8, 3.4, 0.4, 209.20, 1.22, 212.20, 1.21},
      {96, 4042.98, 199.4, 76.4, 9.8, 0.6, 283.39, 1.36, 286.20, 1.34},
      {128, 4172.17, 211.6, 111.4, 22.4, 2.6, 341.18, 1.50, 348.00, 1.47},
      {160, 4541.37, 191.8, 147.0, 41.8, 7.2, 385.19, 1.66, 387.80, 1.65},
  };

  harness::Scenario multi = harness::Scenario::multi(4, 1024);
  multi.ior.hints.driver = mpiio::Driver::ad_lustre;
  multi.ior.hints.striping_unit = 128_MiB;
  harness::RunPlan plan;
  plan.sweep_striping_factor({32, 64, 96, 128, 160})
      .repetitions(reps)
      .base_seed(0x7AB5);
  const auto set = runner.run(multi, plan);

  TextTable table({"R", "avg BW", "avg BW(paper)", "total BW", "use1", "use2",
                   "use3", "use4", "Dinuse pred", "Dinuse meas",
                   "Dload pred", "Dload meas"});
  FigureSeries fig("R", {"task-mean MB/s"});
  double bw_at_160 = 0.0;
  double bw_at_64 = 0.0;
  double bw_at_32 = 0.0;
  for (std::size_t i = 0; i < set.size(); ++i) {
    const auto& p = paper[i];
    const auto& point = set.point(i);
    RunningStats inuse;
    RunningStats load;
    std::vector<RunningStats> usage(5);
    for (const auto& obs : point.reps) {
      inuse.add(obs.contention.d_inuse);
      load.add(obs.contention.d_load);
      for (unsigned k = 1; k <= 4; ++k) {
        const double v = k < obs.contention.histogram.size()
                             ? obs.contention.histogram[k]
                             : 0.0;
        usage[k].add(v);
      }
    }
    const double bw = point.ci.mean;
    const double pred_inuse = core::d_inuse_uniform(p.r, 4, 480);
    const double pred_load = core::d_load(p.r, 4, 480);
    table.cell(fmt_int(p.r))
        .cell(fmt_double(bw, 0))
        .cell(fmt_double(p.avg_bw, 0))
        .cell(fmt_double(bw * 4, 0))
        .cell(fmt_double(usage[1].mean(), 1))
        .cell(fmt_double(usage[2].mean(), 1))
        .cell(fmt_double(usage[3].mean(), 1))
        .cell(fmt_double(usage[4].mean(), 1))
        .cell(fmt_double(pred_inuse, 2))
        .cell(fmt_double(inuse.mean(), 2))
        .cell(fmt_double(pred_load, 2))
        .cell(fmt_double(load.mean(), 2));
    table.end_row();
    fig.add_point(p.r, {bw});
    if (p.r == 160) bw_at_160 = bw;
    if (p.r == 64) bw_at_64 = bw;
    if (p.r == 32) bw_at_32 = bw;
  }
  table.print("Table V: four tasks, varying per-job stripe request");
  fig.print("Figure 4 series");

  std::printf("R 160 -> 64: bandwidth %.1f%% lower (paper: ~14%%), OSTs in use "
              "%.1f%% fewer (paper: ~37%%)\n",
              (1.0 - bw_at_64 / bw_at_160) * 100.0,
              (1.0 - pfsc::core::d_inuse_uniform(64, 4, 480) /
                         pfsc::core::d_inuse_uniform(160, 4, 480)) * 100.0);
  std::printf("R 160 -> 32: bandwidth %.1f%% lower (paper: ~20%%), load %.2f "
              "(paper: ~1.11)\n",
              (1.0 - bw_at_32 / bw_at_160) * 100.0,
              pfsc::core::d_load(32, 4, 480));
  return 0;
}
