// Microbenchmark for the ParallelRunner itself: runs the same RunPlan with
// one worker thread and with eight, checks the two RunSets are
// byte-identical (the runner's central guarantee), and reports the
// wall-clock speedup. On an 8-core machine the sweep should finish at
// least ~3x faster with 8 workers; on fewer cores the speedup shrinks but
// the output stays identical.
//
//   PFSC_QUICK   — shrink the sweep for CI smoke runs.
//   PFSC_THREADS — override the parallel leg's thread count (default 8).
#include <chrono>
#include <cstdio>

#include "bench/bench_util.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace pfsc;
  bench::banner("Runner microbench", "ParallelRunner speedup + determinism check");

  const bool quick = std::getenv("PFSC_QUICK") != nullptr;
  unsigned par_threads = bench::threads();
  if (par_threads == 0) par_threads = 8;

  // A Figure-1-shaped sweep scaled down: enough points that the pool stays
  // busy, small enough to finish in seconds per leg.
  harness::Scenario base;
  base.nprocs = quick ? 64 : 256;
  base.ior.hints.driver = mpiio::Driver::ad_lustre;
  harness::RunPlan plan;
  plan.sweep_striping_factor(quick ? std::vector<double>{8, 32}
                                   : std::vector<double>{8, 32, 64, 160})
      .sweep_striping_unit({static_cast<double>(32_MiB),
                            static_cast<double>(128_MiB)})
      .repetitions(quick ? 1 : 2)
      .base_seed(0x5EED);
  std::printf("%zu plan points x %u repetitions, parallel leg: %u threads\n\n",
              plan.point_count(), plan.reps(), par_threads);

  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const auto serial = harness::ParallelRunner(1).run(base, plan);
  const auto t1 = clock::now();
  const auto parallel = harness::ParallelRunner(par_threads).run(base, plan);
  const auto t2 = clock::now();

  const double serial_s = std::chrono::duration<double>(t1 - t0).count();
  const double parallel_s = std::chrono::duration<double>(t2 - t1).count();
  std::printf("threads=1:  %6.2f s\n", serial_s);
  std::printf("threads=%u: %6.2f s\n", par_threads, parallel_s);
  std::printf("speedup:    %s\n\n", bench::fmt_ratio(serial_s, parallel_s).c_str());

  const std::string csv_serial = serial.to_csv();
  const std::string csv_parallel = parallel.to_csv();
  if (csv_serial != csv_parallel) {
    std::printf("FAIL: thread count changed the results\n");
    return 1;
  }
  std::printf("OK: CSV output byte-identical across thread counts "
              "(%zu bytes, %zu points)\n", csv_serial.size(), serial.size());
  return 0;
}
