// Reproduces Tables III and IV: predicted OSTs-in-use and mean OST load on
// lscratchc (480 OSTs) when n concurrent jobs each request R stripes, for
// R = 160 (the tuned optimum) and R = 64 (the reduced request the paper
// recommends). Pure evaluation of Equations 1-4 — no simulation involved —
// cross-checked against a Monte-Carlo placement experiment.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/metrics.hpp"
#include "support/rng.hpp"

namespace {

using namespace pfsc;

// Paper-reported D_inuse values (Tables III / IV).
constexpr double kPaperInuse160[] = {160.00, 266.67, 337.78, 385.19, 416.79,
                                     437.86, 451.91, 461.27, 467.51, 471.68};
constexpr double kPaperInuse64[] = {64.00,  119.47, 167.54, 209.20, 245.31,
                                    276.60, 303.72, 327.22, 347.59, 365.25};

void print_table(const char* caption, unsigned r,
                 const double* paper_inuse) {
  const double d_total = 480.0;
  Rng rng(2015);
  TextTable table({"Jobs", "Dinuse (paper)", "Dinuse (Eq.2)", "Dinuse (MC)",
                   "Dreq", "Dload"});
  for (unsigned n = 1; n <= 10; ++n) {
    const double inuse = core::d_inuse_uniform(r, n, d_total);
    // Monte-Carlo cross-check: average occupied OSTs over random placements.
    const auto mc = core::occupancy_monte_carlo(480, n, r, rng, 300);
    const double mc_inuse = 480.0 - mc[0];
    table.cell(fmt_int(n))
        .cell(fmt_double(paper_inuse[n - 1], 2))
        .cell(fmt_double(inuse, 2))
        .cell(fmt_double(mc_inuse, 2))
        .cell(fmt_int(static_cast<long long>(core::d_req(r, n))))
        .cell(fmt_double(core::d_load(r, n, d_total), 2));
    table.end_row();
  }
  table.print(caption);
}

}  // namespace

int main() {
  bench::banner("Tables III & IV",
                "OST usage and load vs. concurrent jobs (D_total = 480)");
  print_table("Table III: R = 160 stripes per job", 160, kPaperInuse160);
  print_table("Table IV: R = 64 stripes per job", 64, kPaperInuse64);

  std::printf("Headline (Section V): with 10 jobs at R=160 the mean load is "
              "%.2f;\nreducing to R=64 lowers it to %.2f while still engaging "
              "%.0f OSTs.\n",
              pfsc::core::d_load(160, 10, 480), pfsc::core::d_load(64, 10, 480),
              pfsc::core::d_inuse_uniform(64, 10, 480));
  return 0;
}
