// Ablation study over the design choices DESIGN.md calls out: what happens
// to key experiment points when individual model/middleware mechanisms are
// disabled or varied. Not a paper artefact — this documents which
// mechanisms each reproduced result depends on.
//
//  A. OST allocation policy (uniform random vs round-robin) — collision
//     statistics under 4 contending jobs.
//  B. Collective buffering on/off — tuned shared-file write at 256 procs.
//  C. Write-behind window 0 / 64 MiB / 256 MiB — same workload.
//  D. Elevator batch 1 vs 8 — one OST under 8 contending writers.
//  E. Contention amplification off — the PLFS collapse point disappears.
//  F. Data sieving on/off — independent strided reads.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "harness/scenario.hpp"

using namespace pfsc;

namespace {

void ablation_alloc_policy() {
  std::printf("A. OST allocation policy (4 jobs x 256 procs, R=64)\n");
  for (auto policy : {lustre::AllocPolicy::uniform_random,
                      lustre::AllocPolicy::round_robin}) {
    sim::Engine eng;
    lustre::FileSystem fs(eng, hw::cab_lscratchc(), 11, policy);
    mpi::Runtime rt(fs, 4 * 256, 16);
    // Four jobs each create a file with R=64; no data needed for the census.
    std::vector<lustre::InodeId> files;
    eng.spawn([](lustre::FileSystem& fs, std::vector<lustre::InodeId>& files)
                  -> sim::Task {
      for (int j = 0; j < 4; ++j) {
        auto r = co_await fs.create("/job" + std::to_string(j),
                                    lustre::StripeSettings{64, 128_MiB, -1});
        PFSC_ASSERT(r.ok());
        files.push_back(r.value);
      }
    }(fs, files));
    eng.run();
    const auto obs = core::observe(fs.ost_occupancy(files));
    std::printf("   %-15s Dinuse %5.0f  Dload %.3f  (Eq.2 predicts %.1f/%.2f "
                "for random)\n",
                policy == lustre::AllocPolicy::uniform_random ? "uniform_random"
                                                              : "round_robin",
                obs.d_inuse, obs.d_load, core::d_inuse_uniform(64, 4, 480),
                core::d_load(64, 4, 480));
  }
  std::printf("   -> round-robin eliminates collisions entirely; the paper's\n"
              "      binomial statistics require the random policy.\n\n");
}

double tuned_run(bool collective_buffering, Bytes dirty_window) {
  harness::Scenario spec;
  spec.nprocs = 256;
  spec.ior.hints.driver = mpiio::Driver::ad_lustre;
  spec.ior.hints.striping_factor = 160;
  spec.ior.hints.striping_unit = 128_MiB;
  spec.ior.hints.romio_cb_write = collective_buffering;
  spec.ior.hints.dirty_window = dirty_window;
  const auto res = harness::run_scenario(spec, 21).ior;
  PFSC_ASSERT(res.err == lustre::Errno::ok);
  return res.write_mbps;
}

void ablation_collective_buffering() {
  std::printf("B. Collective buffering (256 procs, tuned layout)\n");
  std::printf("   two-phase ON :  %8.0f MB/s\n", tuned_run(true, 256_MiB));
  std::printf("   two-phase OFF:  %8.0f MB/s\n", tuned_run(false, 256_MiB));
  std::printf("   -> without aggregation every rank writes strided 1 MiB\n"
              "      pieces itself; RPC overheads multiply.\n\n");
}

void ablation_write_behind() {
  std::printf("C. Client write-behind window (256 procs, tuned layout)\n");
  for (Bytes window : {Bytes{0}, Bytes{64_MiB}, Bytes{256_MiB}}) {
    std::printf("   window %7s: %8.0f MB/s\n",
                window == 0 ? "off" : format_bytes(window).c_str(),
                tuned_run(true, window));
  }
  std::printf("   -> the lookahead lets successive collectives overlap and\n"
              "      keeps distant OSTs busy (see DESIGN.md section 5).\n\n");
}

void ablation_elevator_batch() {
  std::printf("D. Elevator batch (one OST, 8 contending writers)\n");
  for (std::uint32_t batch : {1u, 8u}) {
    harness::Scenario spec;
    spec.workload = harness::Workload::probe;
    spec.writers = 8;
    spec.bytes_per_writer = 32_MiB;
    spec.platform.ost_disk.batch = batch;
    const auto res = harness::run_scenario(spec, 31).probe;
    std::printf("   batch %u: per-process %6.1f MB/s\n", batch, res.mean_mbps);
  }
  std::printf("   -> batching amortises stream-switch seeks; real block\n"
              "      schedulers do the same.\n\n");
}

void ablation_contention_amplification() {
  std::printf("E. Contention amplification (PLFS at 2048 procs)\n");
  for (bool amplified : {true, false}) {
    harness::Scenario spec;
    spec.workload = harness::Workload::plfs;
    spec.nprocs = 2048;
    spec.ior.hints.driver = mpiio::Driver::ad_plfs;
    if (!amplified) {
      spec.platform.ost_disk.contention_alpha = 0.0;
      spec.platform.ost_disk.contention_quad_alpha = 0.0;
    }
    const auto res = harness::run_scenario(spec, 41);
    std::printf("   amplification %-3s: %8.0f MB/s (backend load %.2f)\n",
                amplified ? "on" : "off", res.ior.write_mbps,
                res.contention.d_load);
  }
  std::printf("   -> without the hot-stream seek amplification the PLFS\n"
              "      collapse of Table VII cannot be reproduced: plain seek\n"
              "      costs are too small at 480-way parallelism.\n\n");
}

void ablation_data_sieving() {
  std::printf("F. Data sieving (independent strided reads, 64 procs)\n");
  for (bool ds : {true, false}) {
    harness::Scenario spec;
    spec.nprocs = 64;
    spec.ior.read_file = true;
    spec.ior.use_collective = false;
    spec.ior.segment_count = 25;
    spec.ior.hints.driver = mpiio::Driver::ad_lustre;
    spec.ior.hints.striping_factor = 64;
    spec.ior.hints.striping_unit = 1_MiB;
    spec.ior.hints.romio_ds_read = ds;
    const auto res = harness::run_scenario(spec, 51).ior;
    PFSC_ASSERT(res.err == lustre::Errno::ok);
    std::printf("   sieving %-3s: read %8.0f MB/s\n", ds ? "on" : "off",
                res.read_mbps);
  }
  std::printf("   -> these requests are already contiguous 1 MiB reads, so\n"
              "      sieving's window amplification (4 MiB fetched per 1 MiB\n"
              "      wanted) is pure loss; it pays only for ragged,\n"
              "      hole-riddled access patterns.\n\n");
}

void ablation_noise() {
  std::printf("G. Background noise (tuned 256-proc write on a busy system)\n");
  for (unsigned writers : {0u, 8u, 32u}) {
    harness::Scenario spec;
    spec.nprocs = 256;
    spec.ior.hints.driver = mpiio::Driver::ad_lustre;
    spec.ior.hints.striping_factor = 160;
    spec.ior.hints.striping_unit = 128_MiB;
    spec.noise.writers = writers;
    spec.noise.bytes_per_writer = 512_MiB;
    const auto res = harness::run_scenario(spec, 61).ior;
    std::printf("   %2u background writers: %8.0f MB/s\n", writers,
                res.write_mbps);
  }
  std::printf("   -> the shared-system variance the paper mentions.\n");
}

}  // namespace

int main() {
  bench::banner("Ablations", "which mechanisms the reproduced results depend on");
  ablation_alloc_policy();
  ablation_collective_buffering();
  ablation_write_behind();
  ablation_elevator_batch();
  ablation_contention_amplification();
  ablation_data_sieving();
  ablation_noise();
  return 0;
}
