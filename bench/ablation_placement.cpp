// Ablation: acting on the contention model instead of just predicting it.
//
// Part A isolates the MDS placement policies (uniform_random vs
// round_robin vs load_aware vs node_affine) on a churning metadata
// workload: a stream of creates interleaved with unlinks and an OST
// failure/restore cycle, measuring the live per-OST object counts the MDS
// leaves behind. uniform_random's binomial tail and round_robin's
// blindness to the restored OST's deficit both leave hot OSTs;
// load_aware's greedy least-loaded choice keeps the spread within one
// object of flat. The exit status asserts load_aware's max per-OST load
// is no worse than either baseline (and strictly better than random).
//
// Part B reruns four tuned IOR jobs (16-wide stripes on the full 480-OST
// Cab platform, arrivals 0.1 s apart so earlier layouts are on the MDS
// books when later ones are placed) under each placement and reports
// per-job bandwidth plus the max per-OST byte load from the trace
// summary: with load_aware the four layouts never share an OST, so no
// OST serves two jobs' bytes.
//
// Part C turns on the harness::AdmissionController for a replayed
// 200-job fleet compressed into a 5-second arrival window (heavy
// overlap): `threshold` delays release while the Eq. 1-6 prediction is
// over 1.2x, trading queue wait for lower per-job slowdown; `detune`
// shrinks stripe counts instead and pays nothing in wait. The assertions
// are the paper's trade-off, not a point value: mean slowdown drops under
// threshold, total wait is positive, and detune detunes without delaying.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "harness/runner.hpp"
#include "replay/analytics.hpp"
#include "replay/fleet.hpp"
#include "support/stats.hpp"

namespace {

using namespace pfsc;

bool check(bool ok, const char* what) {
  if (!ok) std::printf("FAIL: %s\n", what);
  return ok;
}

// -- Part A: placement micro (MDS state only) ------------------------------

struct PlacementLoad {
  std::uint64_t max_objects = 0;
  std::uint64_t min_objects = 0;
  double mean_objects = 0.0;
};

/// `creates` 8-stripe files with every third file unlinked behind the
/// stream and one OST failed for the middle third of it; returns the live
/// per-OST object spread the MDS left behind.
sim::Task churn_driver(lustre::Client& client, lustre::FileSystem& fs,
                       int creates) {
  lustre::StripeSettings settings;
  settings.stripe_count = 8;
  settings.stripe_size = 1_MiB;
  const auto dir = co_await client.mkdir("/churn");
  PFSC_ASSERT(dir.ok());
  for (int i = 0; i < creates; ++i) {
    if (i == creates / 3) fs.fail_ost(0);
    if (i == 2 * creates / 3) fs.restore_ost(0);
    const std::string path = "/churn/f" + std::to_string(i);
    const auto file = co_await client.create(path, settings);
    PFSC_ASSERT(file.ok());
    if (i % 3 == 2) {
      const lustre::Errno rc =
          co_await client.unlink("/churn/f" + std::to_string(i - 1));
      PFSC_ASSERT(rc == lustre::Errno::ok);
    }
  }
}

PlacementLoad run_churn(lustre::PlacementKind kind, int creates) {
  hw::PlatformParams p = hw::cab_lscratchc();
  p.ost_placement = kind;
  sim::Engine eng;
  lustre::FileSystem fs(eng, p, /*seed=*/17);
  lustre::Client client(fs, "mds-churn");
  eng.spawn(churn_driver(client, fs, creates));
  eng.run();

  const std::vector<std::uint64_t> objects = fs.objects_per_ost();
  PlacementLoad load;
  load.max_objects = *std::max_element(objects.begin(), objects.end());
  load.min_objects = *std::min_element(objects.begin(), objects.end());
  double sum = 0.0;
  for (const std::uint64_t n : objects) sum += static_cast<double>(n);
  load.mean_objects = sum / static_cast<double>(objects.size());
  return load;
}

// -- Part B: four contending jobs, narrow stripes --------------------------

struct QuartetResult {
  double total_mbps = 0.0;
  double jain = 1.0;
  Bytes max_ost_bytes = 0;
};

QuartetResult run_quartet(lustre::PlacementKind kind, int nprocs) {
  // Staggered arrivals keep the four creates ordered in simulated time, so
  // a demand-aware MDS actually has earlier layouts on the books when it
  // places the later ones (simultaneous creates all see an empty system).
  std::vector<harness::JobSpec> jobs;
  for (int j = 0; j < 4; ++j) {
    harness::JobSpec spec;
    spec.kind = harness::JobKind::ior;
    spec.job_id = static_cast<std::uint32_t>(j);
    spec.nprocs = nprocs;
    spec.arrival = 0.1 * j;
    spec.ior.hints.driver = mpiio::Driver::ad_lustre;
    spec.ior.hints.striping_factor = 16;
    spec.ior.hints.striping_unit = 4_MiB;
    spec.ior.test_file = "/abl/placement.dat." + std::to_string(j);
    jobs.push_back(spec);
  }
  harness::Scenario s = harness::Scenario::from_jobs(std::move(jobs));
  s.procs_per_node = 16;
  s.platform.ost_placement = kind;
  s.trace.mode = trace::TraceMode::summary;
  const auto obs = harness::run_scenario(s, 0x91A);

  QuartetResult r;
  std::vector<double> per_job;
  for (const auto& job : obs.per_job) {
    PFSC_ASSERT(job.err == lustre::Errno::ok);
    per_job.push_back(job.write_mbps);
  }
  r.total_mbps = obs.total_mbps;
  r.jain = jain_index(per_job);
  for (const Bytes bytes : obs.trace_summary.ost_bytes) {
    r.max_ost_bytes = std::max(r.max_ost_bytes, bytes);
  }
  return r;
}

// -- Part C: admission-controlled fleet ------------------------------------

struct FleetOutcome {
  replay::FleetReport report;
  double mean_slowdown = 0.0;
};

FleetOutcome run_fleet(harness::AdmissionPolicy policy, double limit,
                       unsigned jobs) {
  replay::FleetConfig cfg;
  cfg.jobs = jobs;
  cfg.seed = 11;
  cfg.span = 5.0;  // compress arrivals so predictions actually trip
  harness::Scenario s = replay::to_scenario(replay::generate_fleet(cfg));
  s.admission.policy = policy;
  s.admission.max_dload = limit;
  const auto obs = harness::run_scenario(s, 0xF1EE7);

  FleetOutcome out;
  out.report = replay::analyze_fleet(obs, s.platform);
  for (const replay::JobStats& js : out.report.jobs) {
    out.mean_slowdown += js.slowdown;
  }
  out.mean_slowdown /= static_cast<double>(out.report.jobs.size());
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation",
                "MDS placement policies + model-driven admission control");
  const bool quick = std::getenv("PFSC_QUICK") != nullptr;
  bool pass = true;

  using lustre::PlacementKind;
  const PlacementKind kKinds[] = {
      PlacementKind::uniform_random, PlacementKind::round_robin,
      PlacementKind::load_aware, PlacementKind::node_affine};

  // -- Part A ------------------------------------------------------------
  const int creates = quick ? 300 : 1200;
  std::printf("\nPart A — %d 8-stripe creates on %u OSTs, every third file\n"
              "unlinked, OST 0 failed for the middle third. Live per-OST\n"
              "object counts left on the MDS:\n\n",
              creates, hw::cab_lscratchc().ost_count);
  TextTable table({"placement", "max", "mean", "min", "spread"});
  std::vector<PlacementLoad> loads;
  for (const PlacementKind kind : kKinds) {
    const PlacementLoad load = run_churn(kind, creates);
    loads.push_back(load);
    table.cell(lustre::placement_kind_name(kind))
        .cell(std::to_string(load.max_objects))
        .cell(fmt_double(load.mean_objects, 1))
        .cell(std::to_string(load.min_objects))
        .cell(std::to_string(load.max_objects - load.min_objects));
    table.end_row();
  }
  table.print("Live objects per OST after the churn stream");

  const PlacementLoad& rand_load = loads[0];
  const PlacementLoad& rr_load = loads[1];
  const PlacementLoad& la_load = loads[2];
  pass &= check(la_load.max_objects < rand_load.max_objects,
                "load_aware max per-OST load strictly below uniform_random");
  pass &= check(la_load.max_objects <= rr_load.max_objects,
                "load_aware max per-OST load no worse than round_robin");
  pass &= check(la_load.max_objects - la_load.min_objects <= 1,
                "load_aware keeps live demand within one object of flat");

  // -- Part B ------------------------------------------------------------
  const int nprocs = quick ? 64 : 256;
  std::printf("\nPart B — four tuned IOR jobs (%d ranks each, 16-wide\n"
              "stripes on 480 OSTs) arriving 0.1 s apart, per placement\n"
              "policy:\n\n",
              nprocs);
  TextTable fig({"placement", "total MB/s", "jain", "max OST GiB"});
  std::vector<QuartetResult> quartets;
  for (const PlacementKind kind : kKinds) {
    const QuartetResult r = run_quartet(kind, nprocs);
    quartets.push_back(r);
    fig.cell(lustre::placement_kind_name(kind))
        .cell(fmt_double(r.total_mbps, 0))
        .cell(fmt_double(r.jain, 4))
        .cell(fmt_double(static_cast<double>(r.max_ost_bytes) /
                             static_cast<double>(1_GiB),
                         2));
    fig.end_row();
  }
  fig.print("Four-job contention under each placement");
  pass &= check(quartets[2].max_ost_bytes <= quartets[0].max_ost_bytes,
                "load_aware max per-OST bytes <= uniform_random (no overlap)");
  pass &= check(quartets[2].jain >= quartets[0].jain - 1e-9,
                "load_aware at least as fair as uniform_random");

  // -- Part C ------------------------------------------------------------
  // 200 jobs are needed to push 480 OSTs past the 1.2x prediction even in
  // quick mode — an 80-job fleet never trips the gate on this platform.
  const unsigned fleet_jobs = 200;
  const double limit = 1.2;
  std::printf("\nPart C — %u-job fleet over a 5 s arrival window; admission\n"
              "policies at a %.1fx predicted-D_load limit:\n\n",
              fleet_jobs, limit);
  const FleetOutcome always =
      run_fleet(harness::AdmissionPolicy::always, limit, fleet_jobs);
  const FleetOutcome threshold =
      run_fleet(harness::AdmissionPolicy::threshold, limit, fleet_jobs);
  const FleetOutcome detune =
      run_fleet(harness::AdmissionPolicy::detune, limit, fleet_jobs);

  TextTable adm({"admission", "mean slowdown", "jain", "delayed", "detuned",
                 "total wait (s)"});
  const struct {
    const char* name;
    const FleetOutcome* out;
  } rows[] = {{"always", &always}, {"threshold", &threshold},
              {"detune", &detune}};
  for (const auto& row : rows) {
    adm.cell(row.name)
        .cell(fmt_double(row.out->mean_slowdown, 3))
        .cell(fmt_double(row.out->report.jain_fairness, 4))
        .cell(std::to_string(row.out->report.delayed))
        .cell(std::to_string(row.out->report.detuned))
        .cell(fmt_double(row.out->report.total_admit_wait, 2));
    adm.end_row();
  }
  adm.print("Fleet outcomes per admission policy");

  pass &= check(!always.report.has_admission,
                "always leaves no admission records (ungated baseline)");
  pass &= check(threshold.report.delayed > 0,
                "threshold delays at least one overlapping job");
  pass &= check(threshold.report.total_admit_wait > 0.0,
                "threshold pays for the gating in queue wait");
  pass &= check(threshold.mean_slowdown < always.mean_slowdown,
                "threshold reduces mean per-job slowdown vs always");
  pass &= check(detune.report.detuned > 0,
                "detune shrinks at least one overlapping layout");
  pass &= check(detune.report.total_admit_wait == 0.0,
                "detune never delays (stripe reduction instead of wait)");

  std::printf("\n%s\n", pass ? "ABLATION PASS" : "ABLATION FAIL");
  return pass ? 0 : 1;
}
