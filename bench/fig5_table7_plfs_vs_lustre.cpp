// Reproduces Figure 5 and Table VII: IOR write bandwidth at 16..4,096
// processes through the tuned ad_lustre driver (160 x 128 MiB) vs the
// ad_plfs driver (backend files on file-system-default 2 x 1 MiB stripes),
// with five-repetition means and 95% confidence intervals.
//
// Paper shape: PLFS wins at small/medium scale, peaks around 512 ranks,
// then collapses — by 4,096 ranks it is ~5x slower than tuned Lustre (and
// slower than even untuned installations), because its n files x 2 stripes
// self-contend the OSTs (Eq. 5-6 predict load 17.06).
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/metrics.hpp"
#include "harness/experiments.hpp"

int main() {
  using namespace pfsc;
  bench::banner("Figure 5 / Table VII", "IOR through ad_lustre vs ad_plfs, 16..4096 procs");
  const unsigned reps = bench::repetitions(5);
  std::printf("repetitions per point: %u\n\n", reps);

  struct PaperRow {
    int procs;
    double lustre, plfs;
  };
  const PaperRow paper[] = {
      {16, 403.75, 752.96},     {32, 404.71, 727.33},
      {64, 857.35, 1776.70},    {128, 1987.51, 3814.62},
      {256, 4354.98, 7126.88},  {512, 8985.14, 10723.42},
      {1024, 13859.58, 8575.13}, {2048, 16200.16, 5696.41},
      {4096, 16917.11, 3069.05},
  };

  TextTable table({"procs", "lustre MB/s (95% CI)", "paper", "plfs MB/s (95% CI)",
                   "paper ", "plfs load (Eq.6)"});
  FigureSeries fig("procs", {"lustre", "plfs"});
  for (const auto& p : paper) {
    std::vector<double> lustre_samples;
    std::vector<double> plfs_samples;
    Rng seeder(0xF5'0000 + static_cast<std::uint64_t>(p.procs));
    for (unsigned rep = 0; rep < reps; ++rep) {
      const std::uint64_t seed = seeder.next_u64();
      harness::IorRunSpec lu;
      lu.nprocs = p.procs;
      lu.ior.hints.driver = mpiio::Driver::ad_lustre;
      lu.ior.hints.striping_factor = 160;
      lu.ior.hints.striping_unit = 128_MiB;
      const auto rl = harness::run_single_ior(lu, seed);
      PFSC_ASSERT(rl.err == lustre::Errno::ok && rl.verified);
      lustre_samples.push_back(rl.write_mbps);

      harness::IorRunSpec pl;
      pl.nprocs = p.procs;
      pl.ior.hints.driver = mpiio::Driver::ad_plfs;
      const auto rp = harness::run_plfs_ior(pl, seed);
      PFSC_ASSERT(rp.ior.err == lustre::Errno::ok && rp.ior.verified);
      plfs_samples.push_back(rp.ior.write_mbps);
    }
    const auto lustre_ci = confidence_interval(lustre_samples);
    const auto plfs_ci = confidence_interval(plfs_samples);
    table.cell(fmt_int(p.procs))
        .cell(bench::fmt_ci(lustre_ci))
        .cell(fmt_double(p.lustre, 0))
        .cell(bench::fmt_ci(plfs_ci))
        .cell(fmt_double(p.plfs, 0))
        .cell(fmt_double(core::plfs_d_load(static_cast<unsigned>(p.procs), 480), 2));
    table.end_row();
    fig.add_point(p.procs, {lustre_ci.mean, plfs_ci.mean});
    std::printf("procs=%d done\n", p.procs);
  }
  std::printf("\n");
  table.print("Table VII: IOR write bandwidth through Lustre and PLFS");
  fig.print("Figure 5 series");

  std::printf("Shape checks: PLFS should win at small scale, peak mid-scale,\n"
              "then fall below ad_lustre as its self-contention load (last\n"
              "column) grows towards 17 tasks per OST at 4,096 ranks.\n");
  return 0;
}
