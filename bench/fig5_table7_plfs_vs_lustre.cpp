// Reproduces Figure 5 and Table VII: IOR write bandwidth at 16..4,096
// processes through the tuned ad_lustre driver (160 x 128 MiB) vs the
// ad_plfs driver (backend files on file-system-default 2 x 1 MiB stripes),
// with five-repetition means and 95% confidence intervals.
//
// Paper shape: PLFS wins at small/medium scale, peaks around 512 ranks,
// then collapses — by 4,096 ranks it is ~5x slower than tuned Lustre (and
// slower than even untuned installations), because its n files x 2 stripes
// self-contend the OSTs (Eq. 5-6 predict load 17.06).
//
// Seed design: SeedMode::per_rep pairs every plan point on the same random
// draws (common random numbers), so each repetition compares Lustre and
// PLFS on an identically-placed file system.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/metrics.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace pfsc;
  bench::banner("Figure 5 / Table VII", "IOR through ad_lustre vs ad_plfs, 16..4096 procs");
  const unsigned reps = bench::repetitions(5);
  const harness::ParallelRunner runner(bench::threads());
  std::printf("repetitions per point: %u, worker threads: %u\n\n", reps,
              runner.threads());

  struct PaperRow {
    int procs;
    double lustre, plfs;
  };
  const PaperRow paper[] = {
      {16, 403.75, 752.96},     {32, 404.71, 727.33},
      {64, 857.35, 1776.70},    {128, 1987.51, 3814.62},
      {256, 4354.98, 7126.88},  {512, 8985.14, 10723.42},
      {1024, 13859.58, 8575.13}, {2048, 16200.16, 5696.41},
      {4096, 16917.11, 3069.05},
  };
  std::vector<double> procs_values;
  for (const auto& p : paper) procs_values.push_back(p.procs);

  harness::Scenario base;
  harness::RunPlan plan;
  harness::Axis driver_axis;
  driver_axis.name = "driver";
  driver_axis.values = {0, 1};
  driver_axis.apply = [](harness::Scenario& s, double v) {
    if (v == 0) {  // tuned Lustre
      s.workload = harness::Workload::ior;
      s.ior.hints.driver = mpiio::Driver::ad_lustre;
      s.ior.hints.striping_factor = 160;
      s.ior.hints.striping_unit = 128_MiB;
    } else {  // PLFS: backend files keep the file-system default layout
      s.workload = harness::Workload::plfs;
      s.ior.hints = mpiio::Hints{};
      s.ior.hints.driver = mpiio::Driver::ad_plfs;
    }
  };
  driver_axis.label = [](double v) {
    return v == 0 ? std::string("lustre") : std::string("plfs");
  };
  plan.sweep(std::move(driver_axis))
      .sweep_nprocs(procs_values)
      .repetitions(reps)
      .base_seed(0xF5'0000)
      .seed_mode(harness::RunPlan::SeedMode::per_rep);
  const auto set = runner.run(base, plan);

  // Points expand driver-major (last axis fastest): lustre block first.
  const std::size_t n = procs_values.size();
  TextTable table({"procs", "lustre MB/s (95% CI)", "paper", "plfs MB/s (95% CI)",
                   "paper ", "plfs load (Eq.6)"});
  FigureSeries fig("procs", {"lustre", "plfs"});
  for (std::size_t i = 0; i < n; ++i) {
    const auto& p = paper[i];
    const auto& lustre_pt = set.point(i);
    const auto& plfs_pt = set.point(n + i);
    for (const auto& obs : lustre_pt.reps) {
      PFSC_ASSERT(obs.ior.err == lustre::Errno::ok && obs.ior.verified);
    }
    for (const auto& obs : plfs_pt.reps) {
      PFSC_ASSERT(obs.ior.err == lustre::Errno::ok && obs.ior.verified);
    }
    table.cell(fmt_int(p.procs))
        .cell(bench::fmt_ci(lustre_pt.ci))
        .cell(fmt_double(p.lustre, 0))
        .cell(bench::fmt_ci(plfs_pt.ci))
        .cell(fmt_double(p.plfs, 0))
        .cell(fmt_double(core::plfs_d_load(static_cast<unsigned>(p.procs), 480), 2));
    table.end_row();
    fig.add_point(p.procs, {lustre_pt.ci.mean, plfs_pt.ci.mean});
  }
  table.print("Table VII: IOR write bandwidth through Lustre and PLFS");
  fig.print("Figure 5 series");

  std::printf("Shape checks: PLFS should win at small scale, peak mid-scale,\n"
              "then fall below ad_lustre as its self-contention load (last\n"
              "column) grows towards 17 tasks per OST at 4,096 ranks.\n");
  return 0;
}
