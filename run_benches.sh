#!/bin/bash
# Regenerates every paper table/figure plus ablations and microbenchmarks.
# micro_simcore additionally emits BENCH_simcore.json (Google Benchmark
# JSON), the machine-readable record the CI perf gate checks with
# tools/check_bench_baseline.py.
cd /root/repo
for b in build/bench/*; do
  case "$(basename "$b")" in
    micro_simcore)
      "$b" --benchmark_out=BENCH_simcore.json --benchmark_out_format=json
      ;;
    *)
      "$b"
      ;;
  esac
done
