#!/bin/bash
# Regenerates every paper table/figure plus ablations and microbenchmarks.
cd /root/repo
for b in build/bench/*; do
  "$b"
done
