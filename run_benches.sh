#!/bin/bash
# Regenerates every paper table/figure plus ablations and microbenchmarks.
# micro_simcore additionally emits BENCH_simcore.json (Google Benchmark
# JSON), the machine-readable record the CI perf gate checks with
# tools/check_bench_baseline.py.
cd /root/repo

# A debug-build capture is not a perf reference: refuse outright rather
# than silently committing numbers that are 10-50x off. (Google Benchmark
# itself only warns via "library_build_type": "debug" in the JSON, which
# is easy to miss — the seed repo's baseline shipped exactly that way.)
build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[A-Z]*=//p' build/CMakeCache.txt 2>/dev/null)
case "$build_type" in
  Release|RelWithDebInfo) ;;
  *)
    echo "run_benches.sh: refusing to benchmark a '${build_type:-unknown}' build." >&2
    echo "Reconfigure with -DCMAKE_BUILD_TYPE=Release and rebuild first." >&2
    exit 1
    ;;
esac

# A loaded machine skews every wall-clock number. Warn (don't refuse:
# CI runners self-report nonzero load) when the 1-minute load average
# exceeds the core count.
cores=$(nproc 2>/dev/null || echo 1)
load=$(cut -d' ' -f1 /proc/loadavg 2>/dev/null || echo 0)
if [ "$(echo "$load $cores" | awk '{print ($1 > $2)}')" = "1" ]; then
  echo "run_benches.sh: WARNING: load average $load exceeds $cores core(s);" >&2
  echo "numbers captured now will be noisy. Prefer an idle machine." >&2
fi

for b in build/bench/*; do
  case "$(basename "$b")" in
    micro_simcore)
      "$b" --benchmark_out=BENCH_simcore.json --benchmark_out_format=json
      ;;
    *)
      "$b"
      ;;
  esac
done
