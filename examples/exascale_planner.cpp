// File-system sizing study — the paper's closing argument made executable:
// "With the results from these equations, various file system purchasing
//  decisions can be made; for instance, the number of OSTs can be increased
//  in order to reduce the OST load for a theoretically 'average' I/O
//  workload."
//
// For a target workload mix (how many concurrent jobs, how many stripes
// each, plus PLFS-style file-per-process users at a given rank count) this
// sweeps candidate OST counts and reports the predicted mean load, the
// expected busiest-OST load, and the job slowdown, then validates one
// candidate with a simulated contention run.
#include <cstdio>
#include <vector>

#include "core/metrics.hpp"
#include "harness/scenario.hpp"
#include "support/table.hpp"

using namespace pfsc;

int main() {
  std::printf("Exascale-planning study: sizing the OST pool\n");
  std::printf("============================================\n\n");

  // The workload mix to provision for.
  const unsigned tuned_jobs = 6;        // apps striping wide
  const unsigned stripes_per_job = 160;
  const unsigned plfs_ranks = 2048;     // one PLFS-style N-N application

  std::printf("Workload: %u tuned jobs x %u stripes + one %u-rank "
              "file-per-process app\n\n", tuned_jobs, stripes_per_job,
              plfs_ranks);

  TextTable table({"OSTs", "tuned Dload", "busiest OST", "job slowdown",
                   "plfs Dload"});
  for (unsigned osts : {480u, 960u, 1920u, 3840u, 7680u}) {
    const unsigned r = std::min(stripes_per_job, osts);
    table.cell(fmt_int(osts))
        .cell(fmt_double(core::d_load(r, tuned_jobs, osts), 2))
        .cell(fmt_double(core::expected_max_occupancy(osts, tuned_jobs, r, osts), 2))
        .cell(fmt_double(core::predicted_job_slowdown(osts, tuned_jobs, r), 2))
        .cell(fmt_double(core::plfs_d_load(plfs_ranks, osts), 2));
    table.end_row();
  }
  table.print("Predicted contention vs OST-pool size");

  std::printf("Reading the table: the paper's 480-OST lscratchc runs this mix\n"
              "at ~%.1f tasks per OST with some OST shared %.0f ways; about\n"
              "%uk OSTs would keep even the busiest target near 2.\n\n",
              core::d_load(stripes_per_job, tuned_jobs, 480),
              core::expected_max_occupancy(480, tuned_jobs, stripes_per_job, 480),
              4u);

  // Spot-validate the 480 vs 1920 rows with real contention runs (smaller
  // jobs keep the example fast; the *ratio* is what matters).
  std::printf("Validation: 4 contending 256-proc jobs, R=64, measured per-job "
              "bandwidth:\n");
  for (unsigned osts : {480u, 1920u}) {
    harness::Scenario spec = harness::Scenario::multi(4, 256);
    spec.ior.hints.driver = mpiio::Driver::ad_lustre;
    spec.ior.hints.striping_factor = 64;
    spec.ior.hints.striping_unit = 128_MiB;
    spec.platform.ost_count = osts;
    spec.platform.oss_count = osts / 15;  // keep OSTs-per-OSS constant
    const auto res = harness::run_scenario(spec, 777);
    std::printf("  %4u OSTs: %7.0f MB/s per job (measured load %.2f, "
                "predicted %.2f)\n",
                osts, res.metric, res.contention.d_load,
                core::d_load(64, 4, osts));
  }
  std::printf("\nMore OSTs -> fewer collisions -> better per-job bandwidth,\n"
              "which is exactly the purchasing lever the paper describes.\n");
  return 0;
}
