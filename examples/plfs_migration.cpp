// PLFS adoption study: should this application use PLFS?
//
// Section VI's conclusion as a tool: "the benefits PLFS may have on an
// application can be calculated based on the scale at which it will be run,
// as well as on the number of OSTs available". For a range of job sizes
// this example (a) predicts PLFS's backend OST load with Eq. 5/6, (b) runs
// the workload through ad_lustre, ad_ufs and ad_plfs, and (c) reports which
// driver wins — including the read-back path, PLFS's original selling
// point.
#include <cstdio>
#include <vector>

#include "core/metrics.hpp"
#include "harness/scenario.hpp"
#include "support/table.hpp"

using namespace pfsc;

namespace {

ior::Result run_driver(int nprocs, mpiio::Driver driver, bool read_back) {
  harness::Scenario spec = driver == mpiio::Driver::ad_plfs
                               ? harness::Scenario::plfs_ior()
                               : harness::Scenario::single_ior();
  spec.nprocs = nprocs;
  spec.ior.read_file = read_back;
  spec.ior.hints.driver = driver;
  if (driver == mpiio::Driver::ad_lustre) {
    spec.ior.hints.striping_factor = 160;
    spec.ior.hints.striping_unit = 128_MiB;
  }
  // Shrink the workload so the read phase keeps the example snappy.
  spec.ior.segment_count = 25;
  return harness::run_scenario(spec, 99).ior;
}

}  // namespace

int main() {
  std::printf("PLFS adoption study on simulated lscratchc (480 OSTs)\n\n");

  std::printf("Step 1 — predict PLFS self-contention with Eq. 5/6:\n");
  TextTable pred({"ranks", "backend files", "Dinuse", "Dload", "verdict"});
  for (unsigned n : {64u, 256u, 512u, 1024u, 2048u, 4096u}) {
    const double load = core::plfs_d_load(n, 480);
    pred.cell(fmt_int(n))
        .cell(fmt_int(n))
        .cell(fmt_double(core::plfs_d_inuse(n, 480), 1))
        .cell(fmt_double(load, 2))
        .cell(load < 3.0 ? "OK (load < 3)" : "self-contended");
    pred.end_row();
  }
  pred.print("");
  std::printf("The paper's rule of thumb: load ~3 (about %u ranks here) is "
              "where PLFS stops paying.\n\n",
              core::plfs_cores_at_load(480, 3.0));

  std::printf("Step 2 — measure write + read-back at two scales:\n");
  TextTable meas({"ranks", "driver", "write MB/s", "read MB/s"});
  for (int n : {256, 2048}) {
    for (auto driver : {mpiio::Driver::ad_ufs, mpiio::Driver::ad_lustre,
                        mpiio::Driver::ad_plfs}) {
      const auto res = run_driver(n, driver, /*read_back=*/true);
      PFSC_ASSERT(res.err == lustre::Errno::ok);
      meas.cell(fmt_int(n))
          .cell(mpiio::driver_name(driver))
          .cell(fmt_double(res.write_mbps, 0))
          .cell(fmt_double(res.read_mbps, 0));
      meas.end_row();
    }
  }
  meas.print("");

  std::printf("Expected: PLFS ahead of both MPI-IO drivers at 256 ranks,\n"
              "behind the tuned ad_lustre (and possibly even ad_ufs) at 2048.\n");
  return 0;
}
