// pfsc_cli — a command-line driver for the simulator, so experiments can be
// scripted without writing C++. Hints travel in MPI_Info textual form.
//
//   pfsc_cli ior    --nprocs 1024 --hints "driver=ad_lustre;striping_factor=160;striping_unit=134217728" --reps 3
//   pfsc_cli multi  --jobs 4 --nprocs 1024 --stripes 64
//   pfsc_cli probe  --writers 8
//   pfsc_cli plfs   --nprocs 512
//   pfsc_cli metrics --dtotal 480 --stripes 160 --jobs 10
//   pfsc_cli advise --dtotal 480 --jobs 4 --budget 1.25
//   pfsc_cli health --jobs 4 --stripes 64    (run jobs, then report)
//   pfsc_cli replay --replay data/fig3_quartet.joblog --report report.json
//   pfsc_cli fleet  --fleet 200 --fleet_mix ior:4,checkpoint:2 --fleet_seed 7
//
// The flag surface is the Scenario/RunPlan field set itself (see
// harness::cli::scenario_flags): each flag is named after the field it
// sets, the old spellings remain as aliases, and every value is parsed
// strictly — garbage input is an error, never a silent zero. --threads
// runs repetitions across a worker pool without changing any result.
#include <cstdio>
#include <fstream>
#include <string>

#include "core/fs_report.hpp"
#include "core/metrics.hpp"
#include "harness/cli.hpp"
#include "harness/runner.hpp"
#include "replay/analytics.hpp"
#include "replay/replay_cli.hpp"
#include "support/table.hpp"
#include "trace/export.hpp"

using namespace pfsc;

namespace {

int usage(const harness::cli::FlagTable& table) {
  std::fprintf(stderr,
               "usage: pfsc_cli "
               "<ior|multi|probe|plfs|metrics|advise|health|replay|fleet> "
               "[options]\n%s",
               table.usage().c_str());
  return 2;
}

/// Print the first repetition's trace roll-up (and where the trace went)
/// when the run carried a recorder (--trace summary/full).
void print_trace(const harness::Scenario& scenario,
                 const harness::Observation& obs) {
  if (!obs.traced) return;
  std::fputs(obs.trace_summary.format().c_str(), stdout);
  if (!scenario.trace.out.empty()) {
    std::printf("trace written to %s\n",
                trace::resolve_trace_path(scenario.trace.out, obs.seed).c_str());
  }
}

int run_ior_mode(const harness::Scenario& scenario, const harness::RunPlan& plan,
                 unsigned threads) {
  const auto set = harness::ParallelRunner(threads).run(scenario, plan);
  const auto& point = set.point(0);
  TextTable table({"rep", "write MB/s", "verified", "time s"});
  for (std::size_t rep = 0; rep < point.reps.size(); ++rep) {
    const auto& res = point.reps[rep].ior;
    if (res.err != lustre::Errno::ok) {
      std::fprintf(stderr, "run failed: %s\n", lustre::errno_name(res.err));
      return 1;
    }
    table.cell(fmt_int(static_cast<long long>(rep + 1)))
        .cell(fmt_double(res.write_mbps, 0))
        .cell(res.verified ? "yes" : "NO")
        .cell(fmt_double(res.write_time, 1));
    table.end_row();
  }
  table.print(scenario.workload == harness::Workload::plfs ? "IOR through ad_plfs"
                                                           : "IOR");
  std::printf("mean %.0f MB/s over %u rep(s)\n", point.ci.mean, plan.reps());
  print_trace(scenario, point.reps.front());
  return 0;
}

int run_multi_mode(const harness::Scenario& scenario,
                   const harness::RunPlan& plan, unsigned threads,
                   unsigned dtotal) {
  const auto set = harness::ParallelRunner(threads).run(scenario, plan);
  const auto& res = set.point(0).reps.front();
  TextTable table({"job", "write MB/s"});
  for (std::size_t j = 0; j < res.per_job.size(); ++j) {
    table.cell(fmt_int(static_cast<long long>(j + 1)))
        .cell(fmt_double(res.per_job[j].write_mbps, 0));
    table.end_row();
  }
  table.print("Contending jobs");
  const unsigned stripes = scenario.ior.hints.striping_factor;
  const auto jobs = static_cast<unsigned>(scenario.jobs);
  std::printf("total %.0f MB/s; Dinuse %.0f (Eq.2: %.1f); Dload %.2f (Eq.4: %.2f)\n",
              res.total_mbps, res.contention.d_inuse,
              core::d_inuse_uniform(stripes, jobs, dtotal),
              res.contention.d_load, core::d_load(stripes, jobs, dtotal));
  print_trace(scenario, res);
  return 0;
}

int run_probe_mode(const harness::Scenario& scenario,
                   const harness::RunPlan& plan, unsigned threads) {
  const auto set = harness::ParallelRunner(threads).run(scenario, plan);
  const auto& point = set.point(0);
  const auto& res = point.reps.front().probe;
  TextTable table({"writer", "MB/s"});
  for (std::size_t w = 0; w < res.per_process_mbps.size(); ++w) {
    table.cell(fmt_int(static_cast<long long>(w)))
        .cell(fmt_double(res.per_process_mbps[w], 1));
    table.end_row();
  }
  table.print("Single-OST contention probe");
  std::printf("mean per-process %.1f MB/s over %u rep(s)\n", point.ci.mean,
              plan.reps());
  print_trace(scenario, point.reps.front());
  return 0;
}

int run_metrics_mode(const harness::Scenario& scenario, unsigned dtotal) {
  const unsigned stripes = scenario.ior.hints.striping_factor;
  TextTable table({"jobs", "Dinuse", "Dreq", "Dload", "busiest OST",
                   "job slowdown"});
  for (const auto& pt :
       core::contention_table(stripes, static_cast<unsigned>(scenario.jobs),
                              dtotal)) {
    table.cell(fmt_int(pt.jobs))
        .cell(fmt_double(pt.d_inuse, 2))
        .cell(fmt_int(static_cast<long long>(pt.d_req)))
        .cell(fmt_double(pt.d_load, 2))
        .cell(fmt_double(core::expected_max_occupancy(dtotal, pt.jobs, stripes,
                                                      dtotal), 2))
        .cell(fmt_double(core::predicted_job_slowdown(dtotal, pt.jobs,
                                                      stripes), 2));
    table.end_row();
  }
  char caption[128];
  std::snprintf(caption, sizeof caption,
                "Contention metrics: D_total=%u, R=%u", dtotal, stripes);
  table.print(caption);
  return 0;
}

int run_health_mode(const harness::Scenario& scenario,
                    const harness::RunPlan& plan) {
  // Run a contended layout, then print the operator's health report.
  sim::Engine eng;
  lustre::FileSystem fs(eng, scenario.platform, plan.seed());
  eng.spawn([](lustre::FileSystem& fs, const harness::Scenario& s) -> sim::Task {
    for (int j = 0; j < s.jobs; ++j) {
      auto r = co_await fs.create(
          "/job" + std::to_string(j),
          lustre::StripeSettings{s.ior.hints.striping_factor,
                                 s.ior.hints.striping_unit, -1});
      PFSC_ASSERT(r.ok());
    }
  }(fs, scenario));
  eng.run();
  std::fputs(core::format_health_report(core::collect_health_report(fs)).c_str(),
             stdout);
  return 0;
}

/// replay / fleet modes: run the job list once, analyse it, print the
/// ranked per-application table, optionally write JSON (--report) and the
/// canonical joblog (--emit_log, handy for turning a fleet into a fixture).
int run_fleet_mode(const harness::Scenario& scenario,
                   const harness::RunPlan& plan, unsigned threads,
                   const std::string& report_path,
                   const std::string& emit_path) {
  if (!emit_path.empty()) {
    std::ofstream out(emit_path, std::ios::binary | std::ios::trunc);
    PFSC_REQUIRE(out.good(), "cannot open --emit_log path " + emit_path);
    out << replay::emit_joblog(replay::from_scenario(scenario));
    PFSC_REQUIRE(out.good(), "failed writing " + emit_path);
    std::printf("joblog written to %s\n", emit_path.c_str());
  }
  const auto set = harness::ParallelRunner(threads).run(scenario, plan);
  const auto& obs = set.point(0).reps.front();
  const replay::FleetReport report =
      replay::analyze_fleet(obs, scenario.platform);
  std::fputs(report.format_table().c_str(), stdout);
  if (!report_path.empty()) {
    std::ofstream out(report_path, std::ios::binary | std::ios::trunc);
    PFSC_REQUIRE(out.good(), "cannot open --report path " + report_path);
    out << report.to_json() << "\n";
    PFSC_REQUIRE(out.good(), "failed writing " + report_path);
    std::printf("report written to %s\n", report_path.c_str());
  }
  print_trace(scenario, obs);
  return 0;
}

int run_advise_mode(const harness::Scenario& scenario, unsigned dtotal,
                    double budget) {
  const auto jobs = static_cast<unsigned>(scenario.jobs);
  const auto advice = core::advise_stripe_count(dtotal, jobs, budget, 160);
  if (advice.recommended_stripes == 0) {
    std::printf("No stripe count satisfies load budget %.2f with %d jobs on "
                "%u OSTs.\n", budget, scenario.jobs, dtotal);
    return 1;
  }
  std::printf("Request %u stripes per job: predicted load %.2f, %.0f OSTs in "
              "use, expected job slowdown %.2fx.\n",
              advice.recommended_stripes, advice.predicted_load,
              advice.predicted_inuse,
              core::predicted_job_slowdown(dtotal, jobs,
                                           advice.recommended_stripes));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  harness::Scenario scenario;
  harness::RunPlan plan;
  unsigned threads = 0;
  unsigned dtotal = 480;
  double budget = 1.25;

  replay::ReplayOptions ropts;
  std::string report_path;
  std::string emit_path;

  harness::cli::FlagTable table =
      harness::cli::scenario_flags(scenario, plan, threads);
  table.bind("--dtotal", dtotal, "total OSTs for the analytic modes");
  table.bind("--budget", budget, "load budget for advise mode");
  replay::add_replay_flags(table, ropts);
  table.bind("--report", report_path,
             "write the fleet analytics report as JSON to this path");
  table.bind("--emit_log", emit_path,
             "write the scenario's canonical joblog to this path");

  if (argc < 2) return usage(table);
  const std::string mode = argv[1];

  // Mode presets, applied before the flags so any flag can override them.
  if (mode == "plfs") {
    scenario.workload = harness::Workload::plfs;
    scenario.ior.hints.driver = mpiio::Driver::ad_plfs;
  } else if (mode == "probe") {
    scenario.workload = harness::Workload::probe;
  } else if (mode == "replay" || mode == "fleet") {
    // Job specs carry their own layouts; no tuned-baseline override.
  } else {
    if (mode == "multi") scenario.workload = harness::Workload::multi;
    // The tuned layout of Section IV is the CLI's baseline.
    scenario.ior.hints.driver = mpiio::Driver::ad_lustre;
    scenario.ior.hints.striping_factor = 160;
    scenario.ior.hints.striping_unit = 128_MiB;
  }

  try {
    table.parse(argc, argv, 2);
    if (mode == "replay" || mode == "fleet") {
      if (mode == "replay" && ropts.replay_log.empty()) {
        throw UsageError("replay mode needs --replay <log>");
      }
      if (mode == "fleet") ropts.fleet_requested = true;
      ropts.apply(scenario);
      return run_fleet_mode(scenario, plan, threads, report_path, emit_path);
    }
    ropts.apply(scenario);  // --replay/--fleet also compose with other modes
    if (mode == "ior" || mode == "plfs") {
      return run_ior_mode(scenario, plan, threads);
    }
    if (mode == "multi") return run_multi_mode(scenario, plan, threads, dtotal);
    if (mode == "probe") return run_probe_mode(scenario, plan, threads);
    if (mode == "metrics") return run_metrics_mode(scenario, dtotal);
    if (mode == "advise") return run_advise_mode(scenario, dtotal, budget);
    if (mode == "health") return run_health_mode(scenario, plan);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage(table);
}
