// pfsc_cli — a command-line driver for the simulator, so experiments can be
// scripted without writing C++. Hints travel in MPI_Info textual form.
//
//   pfsc_cli ior    --nprocs 1024 --hints "driver=ad_lustre;striping_factor=160;striping_unit=134217728" --reps 3
//   pfsc_cli multi  --jobs 4 --nprocs 1024 --stripes 64
//   pfsc_cli probe  --writers 8
//   pfsc_cli plfs   --nprocs 512
//   pfsc_cli metrics --dtotal 480 --stripes 160 --jobs 10
//   pfsc_cli advise --dtotal 480 --jobs 4 --budget 1.25
//   pfsc_cli health --jobs 4 --stripes 64    (run jobs, then report)
//
// Every mode prints a compact table; --seed and --reps control repetition.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/fs_report.hpp"
#include "core/metrics.hpp"
#include "harness/experiments.hpp"
#include "mpiio/info.hpp"
#include "support/table.hpp"

using namespace pfsc;

namespace {

struct Args {
  std::string mode;
  int nprocs = 256;
  int jobs = 4;
  unsigned writers = 4;
  unsigned reps = 1;
  unsigned stripes = 160;
  unsigned dtotal = 480;
  double budget = 1.25;
  std::uint64_t seed = 1;
  std::string hints;

  static Args parse(int argc, char** argv) {
    Args args;
    if (argc < 2) usage_and_exit();
    args.mode = argv[1];
    for (int i = 2; i + 1 < argc; i += 2) {
      const std::string key = argv[i];
      const char* value = argv[i + 1];
      if (key == "--nprocs") args.nprocs = std::atoi(value);
      else if (key == "--jobs") args.jobs = std::atoi(value);
      else if (key == "--writers") args.writers = static_cast<unsigned>(std::atoi(value));
      else if (key == "--reps") args.reps = static_cast<unsigned>(std::atoi(value));
      else if (key == "--stripes") args.stripes = static_cast<unsigned>(std::atoi(value));
      else if (key == "--dtotal") args.dtotal = static_cast<unsigned>(std::atoi(value));
      else if (key == "--budget") args.budget = std::atof(value);
      else if (key == "--seed") args.seed = std::strtoull(value, nullptr, 10);
      else if (key == "--hints") args.hints = value;
      else usage_and_exit();
    }
    return args;
  }

  [[noreturn]] static void usage_and_exit() {
    std::fprintf(stderr,
                 "usage: pfsc_cli <ior|multi|probe|plfs|metrics|advise|health> [options]\n"
                 "  --nprocs N --jobs N --writers N --reps N --stripes N\n"
                 "  --dtotal N --budget X --seed N --hints \"k=v;k=v\"\n");
    std::exit(2);
  }
};

mpiio::Hints hints_from(const Args& args, mpiio::Driver default_driver) {
  mpiio::Hints base;
  base.driver = default_driver;
  if (default_driver == mpiio::Driver::ad_lustre) {
    base.striping_factor = args.stripes;
    base.striping_unit = 128_MiB;
  }
  if (args.hints.empty()) return base;
  const auto parsed = mpiio::parse_hints(args.hints, base);
  for (const auto& key : parsed.unknown_keys) {
    std::fprintf(stderr, "warning: ignoring unknown hint '%s'\n", key.c_str());
  }
  return parsed.hints;
}

int run_ior_mode(const Args& args, bool plfs) {
  TextTable table({"rep", "write MB/s", "verified", "time s"});
  RunningStats bw;
  Rng seeder(args.seed);
  for (unsigned rep = 0; rep < args.reps; ++rep) {
    harness::IorRunSpec spec;
    spec.nprocs = args.nprocs;
    spec.ior.hints = hints_from(
        args, plfs ? mpiio::Driver::ad_plfs : mpiio::Driver::ad_lustre);
    const auto res = plfs ? harness::run_plfs_ior(spec, seeder.next_u64()).ior
                          : harness::run_single_ior(spec, seeder.next_u64());
    if (res.err != lustre::Errno::ok) {
      std::fprintf(stderr, "run failed: %s\n", lustre::errno_name(res.err));
      return 1;
    }
    bw.add(res.write_mbps);
    table.cell(fmt_int(rep + 1))
        .cell(fmt_double(res.write_mbps, 0))
        .cell(res.verified ? "yes" : "NO")
        .cell(fmt_double(res.write_time, 1));
    table.end_row();
  }
  table.print(plfs ? "IOR through ad_plfs" : "IOR");
  std::printf("mean %.0f MB/s over %u rep(s)\n", bw.mean(), args.reps);
  return 0;
}

int run_multi_mode(const Args& args) {
  harness::MultiJobSpec spec;
  spec.jobs = args.jobs;
  spec.procs_per_job = args.nprocs;
  spec.ior.hints = hints_from(args, mpiio::Driver::ad_lustre);
  const auto res = harness::run_multi_ior(spec, args.seed);
  TextTable table({"job", "write MB/s"});
  for (std::size_t j = 0; j < res.per_job.size(); ++j) {
    table.cell(fmt_int(static_cast<long long>(j + 1)))
        .cell(fmt_double(res.per_job[j].write_mbps, 0));
    table.end_row();
  }
  table.print("Contending jobs");
  std::printf("total %.0f MB/s; Dinuse %.0f (Eq.2: %.1f); Dload %.2f (Eq.4: %.2f)\n",
              res.total_mbps, res.contention.d_inuse,
              core::d_inuse_uniform(args.stripes, static_cast<unsigned>(args.jobs),
                                    args.dtotal),
              res.contention.d_load,
              core::d_load(args.stripes, static_cast<unsigned>(args.jobs),
                           args.dtotal));
  return 0;
}

int run_probe_mode(const Args& args) {
  harness::ProbeSpec spec;
  spec.writers = args.writers;
  const auto res = harness::run_probe_experiment(spec, args.seed);
  TextTable table({"writer", "MB/s"});
  for (std::size_t w = 0; w < res.per_process_mbps.size(); ++w) {
    table.cell(fmt_int(static_cast<long long>(w)))
        .cell(fmt_double(res.per_process_mbps[w], 1));
    table.end_row();
  }
  table.print("Single-OST contention probe");
  std::printf("mean per-process %.1f MB/s\n", res.mean_mbps);
  return 0;
}

int run_metrics_mode(const Args& args) {
  TextTable table({"jobs", "Dinuse", "Dreq", "Dload", "busiest OST",
                   "job slowdown"});
  for (const auto& pt :
       core::contention_table(args.stripes, static_cast<unsigned>(args.jobs),
                              args.dtotal)) {
    table.cell(fmt_int(pt.jobs))
        .cell(fmt_double(pt.d_inuse, 2))
        .cell(fmt_int(static_cast<long long>(pt.d_req)))
        .cell(fmt_double(pt.d_load, 2))
        .cell(fmt_double(core::expected_max_occupancy(args.dtotal, pt.jobs,
                                                      args.stripes, args.dtotal), 2))
        .cell(fmt_double(core::predicted_job_slowdown(args.dtotal, pt.jobs,
                                                      args.stripes), 2));
    table.end_row();
  }
  char caption[128];
  std::snprintf(caption, sizeof caption,
                "Contention metrics: D_total=%u, R=%u", args.dtotal, args.stripes);
  table.print(caption);
  return 0;
}

int run_health_mode(const Args& args) {
  // Run a contended workload, then print the operator's health report.
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::cab_lscratchc(), args.seed);
  eng.spawn([](lustre::FileSystem& fs, const Args& args) -> sim::Task {
    for (int j = 0; j < args.jobs; ++j) {
      auto r = co_await fs.create("/job" + std::to_string(j),
                                  lustre::StripeSettings{args.stripes, 128_MiB, -1});
      PFSC_ASSERT(r.ok());
    }
  }(fs, args));
  eng.run();
  std::fputs(core::format_health_report(core::collect_health_report(fs)).c_str(),
             stdout);
  return 0;
}

int run_advise_mode(const Args& args) {
  const auto advice = core::advise_stripe_count(
      args.dtotal, static_cast<unsigned>(args.jobs), args.budget, 160);
  if (advice.recommended_stripes == 0) {
    std::printf("No stripe count satisfies load budget %.2f with %d jobs on "
                "%u OSTs.\n", args.budget, args.jobs, args.dtotal);
    return 1;
  }
  std::printf("Request %u stripes per job: predicted load %.2f, %.0f OSTs in "
              "use, expected job slowdown %.2fx.\n",
              advice.recommended_stripes, advice.predicted_load,
              advice.predicted_inuse,
              core::predicted_job_slowdown(args.dtotal,
                                           static_cast<unsigned>(args.jobs),
                                           advice.recommended_stripes));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Args::parse(argc, argv);
  try {
    if (args.mode == "ior") return run_ior_mode(args, false);
    if (args.mode == "plfs") return run_ior_mode(args, true);
    if (args.mode == "multi") return run_multi_mode(args);
    if (args.mode == "probe") return run_probe_mode(args);
    if (args.mode == "metrics") return run_metrics_mode(args);
    if (args.mode == "advise") return run_advise_mode(args);
    if (args.mode == "health") return run_health_mode(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  Args::usage_and_exit();
}
