// Checkpoint contention scenario — the situation the paper's introduction
// motivates: several long-running simulations all periodically dump
// checkpoints to the same parallel file system. Greedy per-job tuning
// (maximum stripes) collides on the shared OSTs; the contention metrics
// recommend a smaller request that barely costs bandwidth.
//
// Three co-scheduled "applications" alternate compute phases with
// collective checkpoint writes, first with greedy striping and then with
// the advisor's recommendation; the example compares checkpoint latency
// and the resulting OST load.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "hw/platform.hpp"
#include "mpi/runtime.hpp"
#include "mpiio/file.hpp"

using namespace pfsc;

namespace {

constexpr int kJobs = 3;
constexpr int kProcsPerJob = 512;
constexpr int kCheckpoints = 3;
constexpr Bytes kBytesPerRankPerCkpt = 64_MiB;
constexpr Seconds kComputePhase = 30.0;

struct Scenario {
  sim::Engine engine;
  lustre::FileSystem fs{engine, hw::cab_lscratchc(), 4242};
  mpi::Runtime runtime{fs, kJobs * kProcsPerJob, 16};
  std::vector<std::unique_ptr<mpi::Communicator>> job_comm;
  // files[job][checkpoint]
  std::vector<std::vector<std::unique_ptr<mpiio::File>>> files;
  std::vector<std::vector<Seconds>> checkpoint_seconds;  // per job

  explicit Scenario(std::uint32_t stripes) {
    mpiio::Hints hints;
    hints.driver = mpiio::Driver::ad_lustre;
    hints.striping_factor = stripes;
    hints.striping_unit = 128_MiB;
    checkpoint_seconds.assign(kJobs, {});
    for (int j = 0; j < kJobs; ++j) {
      job_comm.push_back(std::make_unique<mpi::Communicator>(engine, kProcsPerJob));
      files.emplace_back();
      for (int c = 0; c < kCheckpoints; ++c) {
        const std::string path =
            "/ckpt/app" + std::to_string(j) + "." + std::to_string(c);
        files.back().push_back(
            std::make_unique<mpiio::File>(*job_comm.back(), fs, path, hints));
      }
    }
  }
};

/// One application rank: compute, checkpoint, repeat.
sim::Task app_rank(Scenario& s, int job, int rank) {
  mpi::Communicator& comm = *s.job_comm[static_cast<std::size_t>(job)];
  lustre::Client& client = s.runtime.client(job * kProcsPerJob + rank);
  for (int ckpt = 0; ckpt < kCheckpoints; ++ckpt) {
    co_await s.engine.delay(kComputePhase);  // "science happens"

    mpiio::File& file = *s.files[static_cast<std::size_t>(job)]
                             [static_cast<std::size_t>(ckpt)];
    co_await comm.barrier(rank);
    const Seconds t0 = s.engine.now();
    PFSC_ASSERT(co_await file.open(rank, client) == lustre::Errno::ok);
    const Bytes base = static_cast<Bytes>(rank) * kBytesPerRankPerCkpt;
    for (Bytes off = 0; off < kBytesPerRankPerCkpt; off += 4_MiB) {
      PFSC_ASSERT(co_await file.write_at_all(rank, base + off, 4_MiB) ==
                  lustre::Errno::ok);
    }
    PFSC_ASSERT(co_await file.close(rank) == lustre::Errno::ok);
    co_await comm.barrier(rank);
    if (rank == 0) {
      s.checkpoint_seconds[static_cast<std::size_t>(job)].push_back(
          s.engine.now() - t0);
    }
  }
}

void run_scenario(std::uint32_t stripes, const char* label) {
  Scenario s(stripes);
  // Set up the shared checkpoint directory, then launch every app's ranks.
  s.engine.spawn([](Scenario& s) -> sim::Task {
    auto r = co_await s.fs.mkdir("/ckpt");
    PFSC_ASSERT(r.ok());
    for (int j = 0; j < kJobs; ++j) {
      for (int rank = 0; rank < kProcsPerJob; ++rank) {
        s.engine.spawn(app_rank(s, j, rank));
      }
    }
  }(s));
  s.engine.run();

  std::printf("%s (%u stripes per checkpoint file):\n", label, stripes);
  Seconds worst = 0.0;
  for (int j = 0; j < kJobs; ++j) {
    Seconds total = 0.0;
    for (Seconds t : s.checkpoint_seconds[static_cast<std::size_t>(j)]) {
      total += t;
      worst = std::max(worst, t);
    }
    std::printf("  app %d: mean checkpoint %6.1f s\n", j, total / kCheckpoints);
  }
  // Census over the final round of checkpoint files.
  std::vector<lustre::InodeId> last_files;
  for (int j = 0; j < kJobs; ++j) {
    last_files.push_back(s.files[static_cast<std::size_t>(j)].back()->context().ino);
  }
  const auto obs = core::observe(s.fs.ost_occupancy(last_files));
  std::printf("  worst checkpoint %.1f s; final-round OST load %.2f "
              "(%.0f OSTs in use)\n\n", worst, obs.d_load, obs.d_inuse);
}

}  // namespace

int main() {
  std::printf("Checkpoint contention scenario: %d apps x %d ranks, "
              "%d checkpoints of %s/rank\n\n",
              kJobs, kProcsPerJob, kCheckpoints,
              format_bytes(kBytesPerRankPerCkpt).c_str());

  run_scenario(160, "Greedy tuning (everyone requests the maximum)");

  const auto advice = core::advise_stripe_count(480.0, kJobs, 1.15, 160);
  std::printf("Advisor: for %d concurrent jobs and load budget 1.15 -> "
              "%u stripes (predicted load %.2f)\n\n",
              kJobs, advice.recommended_stripes, advice.predicted_load);
  run_scenario(advice.recommended_stripes, "Advised request");
  return 0;
}
