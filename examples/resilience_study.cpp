// Resilience study — the paper's opening argument, end to end:
// "node-level failures are becoming more commonplace; frequent
//  checkpointing is currently used to recover ... parallel I/O performance
//  has stalled, meaning checkpointing is fast becoming a bottleneck."
//
// A 512-rank application must produce 4 hours of useful compute on the
// simulated Cab, checkpointing 64 MiB/rank against a 6-hour system MTBF.
// The example (1) finds the Young/Daly optimal interval from a measured
// checkpoint cost, (2) sweeps intervals around it, and (3) shows how the
// untuned I/O stack (ad_ufs) drags application efficiency down versus the
// tuned ad_lustre configuration — the cost of ignoring the file system.
#include <cstdio>

#include "apps/checkpoint.hpp"
#include "hw/platform.hpp"
#include "support/table.hpp"

using namespace pfsc;

namespace {

apps::CheckpointSpec base_spec(mpiio::Driver driver) {
  apps::CheckpointSpec spec;
  spec.nprocs = 512;
  spec.procs_per_node = 16;
  spec.bytes_per_rank = 64_MiB;
  spec.work_total = 4.0 * 3600.0;
  spec.mtbf = 6.0 * 3600.0;
  spec.relaunch_delay = 60.0;
  spec.hints.driver = driver;
  if (driver == mpiio::Driver::ad_lustre) {
    spec.hints.striping_factor = 160;
    spec.hints.striping_unit = 128_MiB;
  }
  return spec;
}

apps::CheckpointOutcome run_once(apps::CheckpointSpec spec, std::uint64_t seed) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::cab_lscratchc(), seed);
  return apps::run_checkpoint_app(fs, spec, seed);
}

}  // namespace

int main() {
  std::printf("Checkpoint/restart resilience study (512 ranks, 32 GiB per "
              "checkpoint, MTBF 6 h)\n\n");

  // Step 1: measure the checkpoint cost of each I/O configuration with a
  // short failure-free probe run.
  double cost[2] = {0, 0};
  const mpiio::Driver drivers[2] = {mpiio::Driver::ad_ufs, mpiio::Driver::ad_lustre};
  for (int d = 0; d < 2; ++d) {
    apps::CheckpointSpec probe = base_spec(drivers[d]);
    probe.work_total = 100.0;
    probe.interval = 100.0;
    probe.mtbf = 0.0;
    cost[d] = run_once(probe, 1).mean_checkpoint_seconds;
    std::printf("measured checkpoint cost through %-9s : %7.1f s\n",
                mpiio::driver_name(drivers[d]), cost[d]);
  }
  std::printf("\n");

  // Step 2: optimal intervals from the measured costs.
  for (int d = 0; d < 2; ++d) {
    std::printf("%-9s: Young interval %6.0f s, Daly %6.0f s, predicted "
                "efficiency at Young %4.1f%%\n",
                mpiio::driver_name(drivers[d]),
                apps::young_interval(cost[d], 6.0 * 3600.0),
                apps::daly_interval(cost[d], 6.0 * 3600.0),
                100.0 * apps::predicted_efficiency(
                            apps::young_interval(cost[d], 6.0 * 3600.0),
                            cost[d], 6.0 * 3600.0, 60.0 + cost[d]));
  }
  std::printf("\n");

  // Step 3: simulate the full runs across an interval sweep.
  TextTable table({"driver", "interval s", "makespan h", "ckpts", "wasted",
                   "failures", "work lost h", "efficiency"});
  for (int d = 0; d < 2; ++d) {
    const Seconds young = apps::young_interval(cost[d], 6.0 * 3600.0);
    for (double factor : {0.25, 1.0, 4.0}) {
      apps::CheckpointSpec spec = base_spec(drivers[d]);
      spec.interval = young * factor;
      const auto out = run_once(spec, 42);
      table.cell(mpiio::driver_name(drivers[d]))
          .cell(fmt_double(spec.interval, 0))
          .cell(fmt_double(out.makespan / 3600.0, 2))
          .cell(fmt_int(out.checkpoints_written))
          .cell(fmt_int(out.checkpoints_wasted))
          .cell(fmt_int(out.failures))
          .cell(fmt_double(out.work_lost / 3600.0, 2))
          .cell(fmt_double(out.efficiency * 100.0, 1) + "%");
      table.end_row();
    }
  }
  table.print("Interval sweep around each configuration's Young optimum");

  std::printf("Reading the table: the tuned stack checkpoints so much faster\n"
              "that it can afford short intervals (little rework per failure)\n"
              "at high efficiency, while the untuned stack loses either way —\n"
              "the paper's Exascale warning in one experiment.\n");
  return 0;
}
