// Quickstart: build a simulated Lustre file system, run an MPI-IO workload
// through two differently-tuned drivers, and read the contention metrics.
//
//   $ ./quickstart
//
// Walks through the library's three layers:
//   1. platform + file system construction,
//   2. an MPI job doing collective I/O through MPI-IO hints,
//   3. the contention metrics that predict what the file system will do.
#include <cstdio>

#include "core/metrics.hpp"
#include "hw/platform.hpp"
#include "ior/ior.hpp"
#include "lustre/lfs.hpp"
#include "mpi/runtime.hpp"

using namespace pfsc;

namespace {

/// Run the paper's IOR workload (Table II) over 256 processes with the
/// given driver/hints and report the achieved write bandwidth.
double run_workload(mpiio::Driver driver, std::uint32_t stripes, Bytes stripe_size) {
  // 1. A fresh simulated platform: Cab + lscratchc (Table I of the paper).
  sim::Engine engine;
  lustre::FileSystem fs(engine, hw::cab_lscratchc(), /*seed=*/42);

  // 2. An MPI job: 256 ranks, 16 per node.
  mpi::Runtime runtime(fs, /*nprocs=*/256, /*procs_per_node=*/16);

  // 3. IOR through MPI-IO. ad_lustre honours the striping hints;
  //    ad_ufs (the default everywhere) silently ignores them.
  ior::Config config;  // blockSize 4 MiB, transferSize 1 MiB, 100 segments
  config.hints.driver = driver;
  config.hints.striping_factor = stripes;
  config.hints.striping_unit = stripe_size;

  const ior::Result result = ior::run_ior(runtime, config);
  PFSC_ASSERT(result.err == lustre::Errno::ok);
  PFSC_ASSERT(result.verified);  // every byte really reached the file

  // Inspect the file layout the MDS produced, like `lfs getstripe` would.
  const auto info = lustre::lfs_getstripe(fs, config.test_file);
  std::printf("  %-9s -> %8.0f MB/s  (file laid out as %u x %s stripes)\n",
              mpiio::driver_name(driver), result.write_mbps,
              info.value.stripe_count,
              format_bytes(info.value.stripe_size).c_str());
  return result.write_mbps;
}

}  // namespace

int main() {
  std::printf("pfs-contention quickstart\n");
  std::printf("=========================\n\n");

  std::printf("IOR (256 procs) on simulated lscratchc, default vs tuned:\n");
  const double untuned = run_workload(mpiio::Driver::ad_ufs, 0, 0);
  const double tuned = run_workload(mpiio::Driver::ad_lustre, 160, 128_MiB);
  std::printf("  tuning the Lustre layout bought x%.1f\n\n", tuned / untuned);

  std::printf("What happens when 4 such tuned jobs share the file system?\n");
  const double d_total = 480;  // lscratchc OSTs
  for (unsigned jobs = 1; jobs <= 4; ++jobs) {
    std::printf("  %u job(s): D_inuse %6.1f   D_load %.2f\n", jobs,
                core::d_inuse_uniform(160, jobs, d_total),
                core::d_load(160, jobs, d_total));
  }

  const auto advice = core::advise_stripe_count(d_total, /*expected_jobs=*/4,
                                                /*load_budget=*/1.25,
                                                /*max_stripes=*/160);
  std::printf("\nQoS advisor: with 4 concurrent jobs and a load budget of 1.25,\n"
              "request %u stripes per job (predicted load %.2f, %0.f OSTs in use).\n",
              advice.recommended_stripes, advice.predicted_load,
              advice.predicted_inuse);
  return 0;
}
