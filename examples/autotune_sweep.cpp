// Auto-tuning example: the exhaustive parameter search of Section IV as a
// reusable tool. Sweeps stripe count x stripe size for a user-described
// workload on a chosen platform, reports the optimum, and then shows what
// the contention metrics say that optimum does to a *shared* system —
// the paper's warning about "auto tuning without consideration for the QoS
// of a shared file system".
//
// Usage: autotune_sweep [nprocs] (default 256)
#include <cstdio>
#include <vector>

#include "core/metrics.hpp"
#include "harness/cli.hpp"
#include "harness/runner.hpp"
#include "support/table.hpp"

using namespace pfsc;

int main(int argc, char** argv) {
  int nprocs = 256;
  if (argc > 1) {
    try {
      nprocs = static_cast<int>(harness::cli::parse_int("nprocs", argv[1]));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\nusage: autotune_sweep [nprocs]\n",
                   e.what());
      return 2;
    }
  }
  PFSC_REQUIRE(nprocs >= 1, "autotune_sweep: bad process count");

  std::printf("Auto-tuning IOR (Table II workload) for %d processes on "
              "simulated lscratchc\n\n", nprocs);

  const std::vector<double> counts{2, 8, 32, 64, 128, 160};
  const std::vector<double> sizes{static_cast<double>(1_MiB),
                                  static_cast<double>(32_MiB),
                                  static_cast<double>(128_MiB)};

  harness::Scenario base;
  base.nprocs = nprocs;
  base.ior.hints.driver = mpiio::Driver::ad_lustre;
  harness::RunPlan plan;
  plan.sweep_striping_factor(counts).sweep_striping_unit(sizes).base_seed(0xA0);
  const auto set = harness::ParallelRunner().run(base, plan);

  TextTable table({"stripes", "1 MiB", "32 MiB", "128 MiB"});
  double best = 0.0;
  std::uint32_t best_count = 0;
  Bytes best_size = 0;
  for (std::size_t c = 0; c < counts.size(); ++c) {
    std::vector<std::string> row{fmt_int(static_cast<long long>(counts[c]))};
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      const auto& point = set.point(c * sizes.size() + s);
      PFSC_ASSERT(point.reps[0].ior.err == lustre::Errno::ok);
      const double bw = point.reps[0].ior.write_mbps;
      row.push_back(fmt_double(bw, 0));
      if (bw > best) {
        best = bw;
        best_count = static_cast<std::uint32_t>(point.coords[0]);
        best_size = static_cast<Bytes>(point.coords[1]);
      }
    }
    table.add_row(std::move(row));
  }
  table.print("Write bandwidth (MB/s)");

  std::printf("Optimum: %u stripes x %s -> %.0f MB/s\n\n", best_count,
              format_bytes(best_size).c_str(), best);

  std::printf("...but on a shared system, if everyone adopts this optimum:\n");
  TextTable qos({"concurrent jobs", "OSTs in use", "mean OST load"});
  for (unsigned n = 1; n <= 8; ++n) {
    qos.cell(fmt_int(n))
        .cell(fmt_double(core::d_inuse_uniform(best_count, n, 480), 1))
        .cell(fmt_double(core::d_load(best_count, n, 480), 2));
    qos.end_row();
  }
  qos.print("");

  for (double budget : {1.1, 1.5, 2.0}) {
    const auto advice = core::advise_stripe_count(480.0, 4, budget, 160);
    std::printf("With 4 jobs and a load budget of %.1f, request <= %u stripes "
                "(load %.2f).\n", budget, advice.recommended_stripes,
                advice.predicted_load);
  }
  return 0;
}
