// Auto-tuning example: the exhaustive parameter search of Section IV as a
// reusable tool. Sweeps stripe count x stripe size for a user-described
// workload on a chosen platform, reports the optimum, and then shows what
// the contention metrics say that optimum does to a *shared* system —
// the paper's warning about "auto tuning without consideration for the QoS
// of a shared file system".
//
// Usage: autotune_sweep [nprocs] (default 256)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/metrics.hpp"
#include "harness/experiments.hpp"
#include "support/table.hpp"

using namespace pfsc;

int main(int argc, char** argv) {
  const int nprocs = argc > 1 ? std::atoi(argv[1]) : 256;
  PFSC_REQUIRE(nprocs >= 1, "autotune_sweep: bad process count");

  std::printf("Auto-tuning IOR (Table II workload) for %d processes on "
              "simulated lscratchc\n\n", nprocs);

  const std::vector<std::uint32_t> counts{2, 8, 32, 64, 128, 160};
  const std::vector<Bytes> sizes{1_MiB, 32_MiB, 128_MiB};

  TextTable table({"stripes", "1 MiB", "32 MiB", "128 MiB"});
  double best = 0.0;
  std::uint32_t best_count = 0;
  Bytes best_size = 0;
  for (auto count : counts) {
    std::vector<std::string> row{fmt_int(count)};
    for (auto size : sizes) {
      harness::IorRunSpec spec;
      spec.nprocs = nprocs;
      spec.ior.hints.driver = mpiio::Driver::ad_lustre;
      spec.ior.hints.striping_factor = count;
      spec.ior.hints.striping_unit = size;
      const auto res = harness::run_single_ior(spec, 0xA0 + count);
      PFSC_ASSERT(res.err == lustre::Errno::ok);
      row.push_back(fmt_double(res.write_mbps, 0));
      if (res.write_mbps > best) {
        best = res.write_mbps;
        best_count = count;
        best_size = size;
      }
    }
    table.add_row(std::move(row));
  }
  table.print("Write bandwidth (MB/s)");

  std::printf("Optimum: %u stripes x %s -> %.0f MB/s\n\n", best_count,
              format_bytes(best_size).c_str(), best);

  std::printf("...but on a shared system, if everyone adopts this optimum:\n");
  TextTable qos({"concurrent jobs", "OSTs in use", "mean OST load"});
  for (unsigned n = 1; n <= 8; ++n) {
    qos.cell(fmt_int(n))
        .cell(fmt_double(core::d_inuse_uniform(best_count, n, 480), 1))
        .cell(fmt_double(core::d_load(best_count, n, 480), 2));
    qos.end_row();
  }
  qos.print("");

  for (double budget : {1.1, 1.5, 2.0}) {
    const auto advice = core::advise_stripe_count(480.0, 4, budget, 160);
    std::printf("With 4 jobs and a load budget of %.1f, request <= %u stripes "
                "(load %.2f).\n", budget, advice.recommended_stripes,
                advice.predicted_load);
  }
  return 0;
}
