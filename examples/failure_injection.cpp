// Failure-injection walkthrough: what clients observe when OSTs die and
// come back, and how the allocator degrades.
//
// Exercises the error paths a downstream user of the library needs to
// handle: EIO on writes to failed targets (surfacing at the asynchronous
// flush point, like real page-cache writeback), ENOSPC when the allocator
// cannot satisfy a layout, and recovery after repair.
#include <cstdio>

#include "hw/platform.hpp"
#include "lustre/client.hpp"
#include "lustre/lfs.hpp"

using namespace pfsc;
using lustre::Errno;

namespace {

sim::Task scenario(lustre::FileSystem& fs) {
  lustre::Client client(fs, "app");

  // A healthy write.
  auto file = co_await client.create("/data", lustre::StripeSettings{4, 1_MiB, 0});
  PFSC_ASSERT(file.ok());
  Errno e = co_await client.write(file.value, 0, 16_MiB);
  std::printf("write to healthy file:            %s\n", errno_name(e));

  // Fail one of the file's OSTs mid-life: the next write returns EIO.
  fs.fail_ost(fs.inode(file.value).layout.osts[1]);
  e = co_await client.write(file.value, 16_MiB, 16_MiB);
  std::printf("write with a failed OST:          %s\n", errno_name(e));

  // Reads of data on surviving OSTs still work... (offset 0 lives on OST 0)
  e = co_await client.read(file.value, 0, 512_KiB);
  std::printf("read from surviving stripe:       %s\n", errno_name(e));

  // New files avoid the failed target.
  auto fresh = co_await client.create("/fresh", lustre::StripeSettings{4, 1_MiB, -1});
  PFSC_ASSERT(fresh.ok());
  bool avoided = true;
  for (auto ost : fs.inode(fresh.value).layout.osts) {
    if (fs.ost_failed(ost)) avoided = false;
  }
  std::printf("new file avoids failed OST:       %s\n", avoided ? "yes" : "NO");

  // Mass failure: allocation fails with ENOSPC once too few OSTs are left.
  for (lustre::OstIndex ost = 0; ost < fs.params().ost_count - 2; ++ost) {
    fs.fail_ost(ost);
  }
  auto starved = co_await client.create("/starved", lustre::StripeSettings{4, 1_MiB, -1});
  std::printf("create with 2 healthy OSTs left:  %s\n", errno_name(starved.err));

  // Repair and retry.
  for (lustre::OstIndex ost = 0; ost < fs.params().ost_count; ++ost) {
    fs.restore_ost(ost);
  }
  auto repaired = co_await client.create("/starved", lustre::StripeSettings{4, 1_MiB, -1});
  std::printf("create after repair:              %s\n", errno_name(repaired.err));

  // lfs df shows the operator's view.
  std::printf("\nlfs df (first 8 OSTs):\n");
  const auto df = lustre::lfs_df(fs);
  for (std::size_t i = 0; i < 8 && i < df.size(); ++i) {
    std::printf("  OST %3u: %llu objects%s\n", df[i].ost,
                static_cast<unsigned long long>(df[i].objects),
                df[i].failed ? "  [FAILED]" : "");
  }
  co_return;
}

}  // namespace

int main() {
  std::printf("Failure injection on the simulated file system\n");
  std::printf("==============================================\n\n");
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 7);
  eng.spawn(scenario(fs));
  eng.run();
  return 0;
}
